//! Serving metrics: latency distribution, throughput, shed rate, and
//! per-technique / per-shard breakdowns, serialisable to the same
//! hand-rolled JSON the rest of the workspace uses (`pudiannao_accel::json`
//! — no serde in the build image).
//!
//! All derived figures are computed with integer arithmetic on simulated
//! nanoseconds (percentiles are nearest-rank, utilisation is per-mille),
//! so a report built from the same stream is bit-identical on every
//! platform and worker count.

use pudiannao_accel::json::Value;
use pudiannao_codegen::phases::Phase;
use pudiannao_memsim::Technique;

use crate::admission::AdmissionCounters;
use crate::fleet::FleetConfig;
use crate::request::{technique_of, Priority, Request};

/// One finished request, as recorded by the shard that ran it.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The original request.
    pub request: Request,
    /// The phase it resolved to.
    pub phase: Phase,
    /// When its batch was handed to a shard.
    pub dispatched_ns: u64,
    /// When its kernel finished on the shard.
    pub completed_ns: u64,
}

/// Utilisation counters for one simulated device.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    pub batches: u64,
    pub requests: u64,
    pub reconfigs: u64,
    pub busy_ns: u64,
    pub ops: u64,
    pub offchip_bytes: u64,
    /// `busy_ns * 1000 / makespan_ns` — integer per-mille, filled by
    /// [`ServeReport::assemble`].
    pub utilization_permille: u64,
}

/// Per-technique serving outcome.
#[derive(Clone, Debug)]
pub struct TechniqueStats {
    pub technique: Technique,
    pub completed: u64,
    pub shed: u64,
    pub p99_ns: u64,
}

/// How every offered request resolved under the resilient fleet. The six
/// classes partition `offered` together with `rejected`:
/// `offered == completed_clean + retried_ok + hedge_won + timed_out +
///  failed + shed + rejected`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Finished on the first primary leg, inside its deadline machinery.
    pub completed_clean: u64,
    /// Finished, but only after at least one retry leg.
    pub retried_ok: u64,
    /// Finished because the hedged duplicate beat (or outlived) the
    /// primary.
    pub hedge_won: u64,
    /// Dropped because the tier deadline expired before service.
    pub timed_out: u64,
    /// Exhausted the retry budget without a successful leg.
    pub failed: u64,
    /// Shed at admission (queue caps or priority eviction).
    pub shed: u64,
    /// Malformed (unknown technique) — rejected before queueing.
    pub rejected: u64,
}

impl OutcomeCounts {
    /// Total resolutions — must equal `offered` at end of run.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.completed_clean
            .saturating_add(self.retried_ok)
            .saturating_add(self.hedge_won)
            .saturating_add(self.timed_out)
            .saturating_add(self.failed)
            .saturating_add(self.shed)
            .saturating_add(self.rejected)
    }

    /// All successful resolutions regardless of path.
    #[must_use]
    pub fn completed_total(&self) -> u64 {
        self.completed_clean.saturating_add(self.retried_ok).saturating_add(self.hedge_won)
    }
}

/// Per-priority-tier SLO attainment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierSlo {
    /// Requests of this tier offered to admission (including rejects).
    pub offered: u64,
    /// Malformed requests of this tier.
    pub rejected: u64,
    /// Requests that completed (any path).
    pub completed: u64,
    /// Requests that completed inside their tier deadline.
    pub slo_met: u64,
    /// `slo_met * 1000 / (offered - rejected)` — deadline-met per-mille
    /// of well-formed offered load, filled by [`ServeReport::assemble`].
    pub slo_met_permille: u64,
}

/// Fault and recovery counters for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardResilience {
    /// Crash windows that interrupted (or idled) this shard.
    pub crashes: u64,
    /// Times the health tracker quarantined it.
    pub quarantines: u64,
    /// Simulated ns spent crashed or quarantined.
    pub down_ns: u64,
    /// `(makespan - down_ns) * 1000 / makespan`, filled by
    /// [`ServeReport::assemble`].
    pub availability_permille: u64,
    /// Service-time inflation from the straggler draw (1000 = nominal).
    pub slowdown_permille: u64,
    /// Functional lanes left after the degradation draw masked some off.
    pub lanes_left: u32,
}

/// Everything the chaos/defence machinery adds to a fleet run. `None` on
/// the [`ServeReport`] when both chaos and defences are off, which keeps
/// `serve_report.json` byte-identical to the pre-resilience schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    pub outcomes: OutcomeCounts,
    /// Retry legs scheduled (not all necessarily ran before deadline).
    pub retries_scheduled: u64,
    /// Hedge legs enqueued.
    pub hedges_launched: u64,
    /// Hedge legs cancelled at pick time because the primary had resolved.
    pub hedges_cancelled: u64,
    /// Legs that drew a transient failure.
    pub transient_faults: u64,
    /// Legs killed mid-batch by a shard crash.
    pub crash_killed: u64,
    /// Indexed like [`Priority::ALL`] (bronze, silver, gold).
    pub tiers: [TierSlo; 3],
    /// One entry per shard, same order as [`ServeReport::shards`].
    pub shards: Vec<ShardResilience>,
}

impl ResilienceReport {
    /// Overall SLO attainment: deadline-met per-mille across every tier's
    /// well-formed offered load. The headline the chaos sweep compares
    /// between defence arms.
    #[must_use]
    pub fn overall_slo_permille(&self) -> u64 {
        let met: u64 = self.tiers.iter().map(|t| t.slo_met).sum();
        let wellformed: u64 = self.tiers.iter().map(|t| t.offered.saturating_sub(t.rejected)).sum();
        met.saturating_mul(1000).checked_div(wellformed).unwrap_or(0)
    }

    fn to_json(&self) -> Value {
        let mut tiers = Value::array(Vec::new());
        for (i, t) in self.tiers.iter().enumerate() {
            tiers.push(
                Value::object()
                    .with("tier", Priority::ALL[i].label())
                    .with("offered", t.offered)
                    .with("rejected", t.rejected)
                    .with("completed", t.completed)
                    .with("slo_met", t.slo_met)
                    .with("slo_met_permille", t.slo_met_permille),
            );
        }
        let mut shards = Value::array(Vec::new());
        for (i, s) in self.shards.iter().enumerate() {
            shards.push(
                Value::object()
                    .with("shard", i as u64)
                    .with("crashes", s.crashes)
                    .with("quarantines", s.quarantines)
                    .with("down_ns", s.down_ns)
                    .with("availability_permille", s.availability_permille)
                    .with("slowdown_permille", s.slowdown_permille)
                    .with("lanes_left", u64::from(s.lanes_left)),
            );
        }
        Value::object()
            .with(
                "outcomes",
                Value::object()
                    .with("completed_clean", self.outcomes.completed_clean)
                    .with("retried_ok", self.outcomes.retried_ok)
                    .with("hedge_won", self.outcomes.hedge_won)
                    .with("timed_out", self.outcomes.timed_out)
                    .with("failed", self.outcomes.failed)
                    .with("shed", self.outcomes.shed)
                    .with("rejected", self.outcomes.rejected),
            )
            .with("retries_scheduled", self.retries_scheduled)
            .with("hedges_launched", self.hedges_launched)
            .with("hedges_cancelled", self.hedges_cancelled)
            .with("transient_faults", self.transient_faults)
            .with("crash_killed", self.crash_killed)
            .with("tiers", tiers)
            .with("shards", shards)
    }
}

/// Exact per-request latency decomposition: the five segments partition
/// `completed_ns - arrival_ns` with no gaps or overlaps (backoff to
/// enqueue, queue wait to dispatch, reconfig and setup charges, then
/// service including batch-mates ahead of the request).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Retry-backoff / hedge-delay wait before the winning leg enqueued.
    pub backoff_ns: u64,
    /// Queue wait from enqueue to batch dispatch.
    pub queue_ns: u64,
    /// Datapath reconfiguration charge the winning batch paid.
    pub reconfig_ns: u64,
    /// Engine-reset setup charge.
    pub setup_ns: u64,
    /// Shard service time (including batch-mates ahead of the request).
    pub service_ns: u64,
}

impl LatencyBreakdown {
    /// Sum of all segments — equals the request's end-to-end latency.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.backoff_ns
            .saturating_add(self.queue_ns)
            .saturating_add(self.reconfig_ns)
            .saturating_add(self.setup_ns)
            .saturating_add(self.service_ns)
    }
}

/// Per-priority-tier accumulation of [`LatencyBreakdown`]s over every
/// completed request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierBreakdown {
    /// Completed requests folded in.
    pub completed: u64,
    pub backoff_ns: u64,
    pub queue_ns: u64,
    pub reconfig_ns: u64,
    pub setup_ns: u64,
    pub service_ns: u64,
}

impl TierBreakdown {
    /// Folds one completed request's breakdown in.
    pub fn add(&mut self, b: LatencyBreakdown) {
        self.completed = self.completed.saturating_add(1);
        self.backoff_ns = self.backoff_ns.saturating_add(b.backoff_ns);
        self.queue_ns = self.queue_ns.saturating_add(b.queue_ns);
        self.reconfig_ns = self.reconfig_ns.saturating_add(b.reconfig_ns);
        self.setup_ns = self.setup_ns.saturating_add(b.setup_ns);
        self.service_ns = self.service_ns.saturating_add(b.service_ns);
    }
}

/// Per-mille of the makespan a shard must spend down before it is
/// chaos-bound (5%).
pub const CHAOS_BOUND_DOWN_PERMILLE: u64 = 50;

/// Per-mille of a shard's busy time going to reconfig+setup overhead
/// before it is reconfig-bound (30%).
pub const RECONFIG_BOUND_OVERHEAD_PERMILLE: u64 = 300;

/// Utilisation per-mille above which a shard is queue-bound (85%): the
/// shard is saturated, so latency accumulates in the admission queue.
pub const QUEUE_BOUND_UTIL_PERMILLE: u64 = 850;

/// An `analyze`-style verdict for one shard — the serving analogue of
/// the accel profiler's [`Bottleneck`](pudiannao_accel::profile) taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardVerdict {
    /// `"chaos-bound"`, `"reconfig-bound"`, `"queue-bound"` or
    /// `"balanced"`, checked in that order.
    pub verdict: &'static str,
    pub utilization_permille: u64,
    /// Reconfig+setup overhead as per-mille of busy time.
    pub overhead_permille: u64,
    /// Downtime (crash + quarantine) as per-mille of the makespan.
    pub down_permille: u64,
}

/// Classifies what limits one shard, from its stats alone. Threshold
/// order mirrors `accel::profile::analyze`: the rarest, most actionable
/// cause wins — downtime first, then reconfiguration overhead, then
/// saturation.
#[must_use]
pub fn shard_verdict(stats: &ShardStats, down_ns: u64, makespan_ns: u64) -> ShardVerdict {
    let down_permille = down_ns.saturating_mul(1000).checked_div(makespan_ns).unwrap_or(0);
    let overhead_ns = stats
        .reconfigs
        .saturating_mul(crate::fleet::RECONFIG_NS)
        .saturating_add(stats.batches.saturating_mul(crate::fleet::BATCH_SETUP_NS));
    let overhead_permille =
        overhead_ns.saturating_mul(1000).checked_div(stats.busy_ns).unwrap_or(0);
    let verdict = if down_permille >= CHAOS_BOUND_DOWN_PERMILLE {
        "chaos-bound"
    } else if overhead_permille >= RECONFIG_BOUND_OVERHEAD_PERMILLE {
        "reconfig-bound"
    } else if stats.utilization_permille >= QUEUE_BOUND_UTIL_PERMILLE {
        "queue-bound"
    } else {
        "balanced"
    };
    ShardVerdict {
        verdict,
        utilization_permille: stats.utilization_permille,
        overhead_permille,
        down_permille,
    }
}

/// Everything the observability layer adds to a fleet run: the span-ring
/// drop counter, the per-tier latency attribution, per-shard verdicts,
/// and (when metrics were on) the windowed time series. `None` on the
/// [`ServeReport`] for unobserved runs, keeping the serialised report
/// byte-identical to the pre-observability schema.
#[derive(Clone, Debug)]
pub struct ObservabilityReport {
    /// Span events the bounded ring evicted (0 for a complete trace;
    /// also surfaced once on stderr).
    pub events_dropped: u64,
    /// Indexed like [`Priority::ALL`] (bronze, silver, gold).
    pub tiers: [TierBreakdown; 3],
    /// One verdict per shard, same order as [`ServeReport::shards`].
    pub shard_verdicts: Vec<ShardVerdict>,
    /// The windowed metrics series, when a metrics config was supplied.
    pub metrics: Option<crate::metrics::MetricsReport>,
}

impl ObservabilityReport {
    /// JSON section appended to `serve_report.json` for observed runs.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut tiers = Value::array(Vec::new());
        for (i, t) in self.tiers.iter().enumerate() {
            tiers.push(
                Value::object()
                    .with("tier", Priority::ALL[i].label())
                    .with("completed", t.completed)
                    .with("backoff_ns", t.backoff_ns)
                    .with("queue_ns", t.queue_ns)
                    .with("reconfig_ns", t.reconfig_ns)
                    .with("setup_ns", t.setup_ns)
                    .with("service_ns", t.service_ns),
            );
        }
        let mut verdicts = Value::array(Vec::new());
        for (i, v) in self.shard_verdicts.iter().enumerate() {
            verdicts.push(
                Value::object()
                    .with("shard", i as u64)
                    .with("verdict", v.verdict)
                    .with("utilization_permille", v.utilization_permille)
                    .with("overhead_permille", v.overhead_permille)
                    .with("down_permille", v.down_permille),
            );
        }
        let mut out = Value::object()
            .with("events_dropped", self.events_dropped)
            .with("latency_breakdown", tiers)
            .with("shard_verdicts", verdicts);
        if let Some(m) = &self.metrics {
            out = out.with("metrics", m.to_json());
        }
        out
    }
}

/// Everything `serve_bench` reports about one fleet run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub shards_configured: usize,
    pub max_batch: usize,
    pub counters: AdmissionCounters,
    pub completed: u64,
    /// Completion time of the last request (simulated ns).
    pub makespan_ns: u64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Shed fraction of offered load, in per-mille (integer).
    pub shed_permille: u64,
    /// Per-request latency (arrival to completion), ascending.
    pub latencies_sorted_ns: Vec<u64>,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub mean_ns: u64,
    pub techniques: Vec<TechniqueStats>,
    pub shards: Vec<ShardStats>,
    /// Present only for resilient runs (chaos and/or defences enabled);
    /// `None` keeps the serialised report byte-identical to the
    /// pre-resilience schema.
    pub resilience: Option<ResilienceReport>,
    /// Present only for observed runs (trace and/or metrics enabled),
    /// attached after [`ServeReport::assemble`] by the observability
    /// layer; `None` keeps the serialised report byte-identical to the
    /// pre-observability schema.
    pub observability: Option<ObservabilityReport>,
    /// The raw span-event ring of a traced run, for
    /// [`fleet_timeline`](crate::trace::fleet_timeline). Never
    /// serialised into the report JSON.
    pub trace: Option<crate::trace::FleetTrace>,
    /// Summed per-shard trace-template-cache counters, `None` when the
    /// cache is disabled. Never serialised into the report JSON — the
    /// cache only moves wall-clock and memory, never a report byte.
    pub trace_cache: Option<crate::catalog::TraceCacheStats>,
}

/// Nearest-rank percentile on an ascending slice; `q_permille` is the
/// quantile times 1000 (so p99 is 990, p99.9 is 999).
#[must_use]
pub fn percentile_ns(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * q_permille).div_ceil(1000).max(1);
    sorted[(rank - 1) as usize]
}

impl ServeReport {
    /// Builds the report from raw fleet output.
    #[must_use]
    pub fn assemble(
        config: &FleetConfig,
        counters: AdmissionCounters,
        shed_by_technique: &[u64; Technique::ALL.len()],
        completions: &[Completion],
        shards: &[ShardStats],
        resilience: Option<ResilienceReport>,
    ) -> ServeReport {
        let mut latencies: Vec<u64> =
            completions.iter().map(|c| c.completed_ns - c.request.arrival_ns).collect();
        latencies.sort_unstable();
        let makespan_ns = completions.iter().map(|c| c.completed_ns).max().unwrap_or(0);
        let completed = completions.len() as u64;
        let throughput_rps =
            if makespan_ns == 0 { 0.0 } else { completed as f64 * 1e9 / makespan_ns as f64 };
        let shed_permille = (counters.shed * 1000).checked_div(counters.offered).unwrap_or(0);

        let mut per_tech_latencies: Vec<Vec<u64>> = vec![Vec::new(); Technique::ALL.len()];
        for c in completions {
            per_tech_latencies[technique_of(c.phase).index()]
                .push(c.completed_ns - c.request.arrival_ns);
        }
        let techniques = Technique::ALL
            .iter()
            .enumerate()
            .map(|(i, &technique)| {
                let lane = &mut per_tech_latencies[i];
                lane.sort_unstable();
                TechniqueStats {
                    technique,
                    completed: lane.len() as u64,
                    shed: shed_by_technique[i],
                    p99_ns: percentile_ns(lane, 990),
                }
            })
            .collect();

        let shards = shards
            .iter()
            .map(|s| ShardStats {
                utilization_permille: (s.busy_ns * 1000).checked_div(makespan_ns).unwrap_or(0),
                ..*s
            })
            .collect();

        let mean_ns = if latencies.is_empty() {
            0
        } else {
            latencies.iter().sum::<u64>() / latencies.len() as u64
        };
        let resilience = resilience.map(|mut r| {
            for t in &mut r.tiers {
                let wellformed = t.offered.saturating_sub(t.rejected);
                t.slo_met_permille =
                    t.slo_met.saturating_mul(1000).checked_div(wellformed).unwrap_or(0);
            }
            for s in &mut r.shards {
                let up = makespan_ns.saturating_sub(s.down_ns);
                s.availability_permille =
                    up.saturating_mul(1000).checked_div(makespan_ns).unwrap_or(1000);
            }
            r
        });
        ServeReport {
            shards_configured: config.shards,
            max_batch: config.max_batch,
            counters,
            completed,
            makespan_ns,
            throughput_rps,
            shed_permille,
            p50_ns: percentile_ns(&latencies, 500),
            p99_ns: percentile_ns(&latencies, 990),
            p999_ns: percentile_ns(&latencies, 999),
            max_ns: latencies.last().copied().unwrap_or(0),
            mean_ns,
            latencies_sorted_ns: latencies,
            techniques,
            shards,
            resilience,
            observability: None,
            trace: None,
            trace_cache: None,
        }
    }

    /// Serialises the report (without the raw latency vector — only its
    /// summary) for `serve_report.json`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut techniques = Value::array(Vec::new());
        for t in &self.techniques {
            techniques.push(
                Value::object()
                    .with("technique", t.technique.label())
                    .with("completed", t.completed)
                    .with("shed", t.shed)
                    .with("p99_ns", t.p99_ns),
            );
        }
        let mut shards = Value::array(Vec::new());
        for (i, s) in self.shards.iter().enumerate() {
            shards.push(
                Value::object()
                    .with("shard", i as u64)
                    .with("batches", s.batches)
                    .with("requests", s.requests)
                    .with("reconfigs", s.reconfigs)
                    .with("busy_ns", s.busy_ns)
                    .with("ops", s.ops)
                    .with("offchip_bytes", s.offchip_bytes)
                    .with("utilization_permille", s.utilization_permille),
            );
        }
        let mut out = Value::object()
            .with("shards_configured", self.shards_configured as u64)
            .with("max_batch", self.max_batch as u64)
            .with("offered", self.counters.offered)
            .with("admitted", self.counters.admitted)
            .with("shed", self.counters.shed)
            .with("rejected", self.counters.rejected)
            .with("completed", self.completed)
            .with("shed_permille", self.shed_permille)
            .with("makespan_ns", self.makespan_ns)
            .with("throughput_rps", self.throughput_rps)
            .with(
                "latency_ns",
                Value::object()
                    .with("p50", self.p50_ns)
                    .with("p99", self.p99_ns)
                    .with("p999", self.p999_ns)
                    .with("max", self.max_ns)
                    .with("mean", self.mean_ns),
            )
            .with("techniques", techniques)
            .with("shards", shards);
        // Only resilient runs carry the extra section: a `None` here must
        // serialise to exactly the pre-resilience bytes.
        if let Some(r) = &self.resilience {
            out = out.with("resilience", r.to_json());
        }
        // Same contract for the observability section (the raw trace ring
        // is never serialised; `fleet_timeline` is its export path).
        if let Some(o) = &self.observability {
            out = out.with("observability", o.to_json());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 500), 50);
        assert_eq!(percentile_ns(&v, 990), 99);
        assert_eq!(percentile_ns(&v, 999), 100);
        assert_eq!(percentile_ns(&v, 1000), 100);
    }

    /// Nearest-rank on tiny samples: n ∈ {0, 1, 2} must neither panic
    /// nor index out of range at any quantile, including q=0 (where the
    /// rank clamps up to 1) and q=1000 (where it must not exceed n).
    #[test]
    fn nearest_rank_is_robust_on_tiny_samples() {
        for q in [0, 1, 500, 990, 999, 1000] {
            assert_eq!(percentile_ns(&[], q), 0, "q={q}");
            assert_eq!(percentile_ns(&[42], q), 42, "q={q}");
        }
        assert_eq!(percentile_ns(&[7, 9], 0), 7);
        assert_eq!(percentile_ns(&[7, 9], 500), 7);
        assert_eq!(percentile_ns(&[7, 9], 501), 9);
        assert_eq!(percentile_ns(&[7, 9], 990), 9);
        assert_eq!(percentile_ns(&[7, 9], 1000), 9);
    }

    #[test]
    fn latency_breakdown_partitions_and_accumulates() {
        let b = LatencyBreakdown {
            backoff_ns: 10,
            queue_ns: 20,
            reconfig_ns: 252,
            setup_ns: 87,
            service_ns: 400,
        };
        assert_eq!(b.total_ns(), 769);
        let mut t = TierBreakdown::default();
        t.add(b);
        t.add(LatencyBreakdown { service_ns: 31, ..Default::default() });
        assert_eq!(t.completed, 2);
        assert_eq!(t.service_ns, 431);
        assert_eq!(t.reconfig_ns, 252);
    }

    #[test]
    fn shard_verdicts_follow_the_threshold_order() {
        let stats = ShardStats {
            batches: 10,
            reconfigs: 2,
            busy_ns: 100_000,
            utilization_permille: 500,
            ..Default::default()
        };
        // overhead = 2*252 + 10*87 = 1374 ns of 100_000 busy: 13‰.
        assert_eq!(shard_verdict(&stats, 0, 1_000_000).verdict, "balanced");
        // 5% downtime flips it to chaos-bound regardless of the rest.
        let v = shard_verdict(&stats, 50_000, 1_000_000);
        assert_eq!((v.verdict, v.down_permille), ("chaos-bound", 50));
        // Heavy reconfig churn on little busy time: reconfig-bound.
        let churn =
            ShardStats { batches: 10, reconfigs: 10, busy_ns: 10_000, ..Default::default() };
        assert_eq!(shard_verdict(&churn, 0, 1_000_000).verdict, "reconfig-bound");
        // Saturated shard: queue-bound.
        let hot = ShardStats {
            batches: 10,
            busy_ns: 900_000,
            utilization_permille: 900,
            ..Default::default()
        };
        assert_eq!(shard_verdict(&hot, 0, 1_000_000).verdict, "queue-bound");
        // Empty shard on an empty run: all guards hit their zero paths.
        assert_eq!(shard_verdict(&ShardStats::default(), 0, 0).verdict, "balanced");
    }

    #[test]
    fn observability_section_is_strictly_additive() {
        let cfg = FleetConfig::paper_default();
        let counters = AdmissionCounters::default();
        let shed = [0u64; Technique::ALL.len()];
        let base = ServeReport::assemble(&cfg, counters, &shed, &[], &[], None);
        assert!(base.observability.is_none() && base.trace.is_none());
        let a = base.to_json().to_string_pretty();
        assert!(!a.contains("\"observability\""), "unobserved runs must not grow a section");

        let mut observed = ServeReport::assemble(&cfg, counters, &shed, &[], &[], None);
        observed.observability = Some(ObservabilityReport {
            events_dropped: 3,
            tiers: [TierBreakdown::default(); 3],
            shard_verdicts: vec![shard_verdict(&ShardStats::default(), 0, 0)],
            metrics: None,
        });
        let b = observed.to_json().to_string_pretty();
        assert!(b.contains("\"observability\""));
        assert!(b.contains("\"latency_breakdown\""));
        assert!(b.contains("\"shard_verdicts\""));
        assert!(!b.contains("\"metrics\""), "metrics key only appears when metrics ran");
        // The raw ring never leaks into the JSON.
        observed.trace = Some(crate::trace::FleetTrace::new(&crate::trace::TraceConfig::default()));
        assert_eq!(observed.to_json().to_string_pretty(), b);
    }

    #[test]
    fn resilience_section_is_strictly_additive() {
        let cfg = FleetConfig::paper_default();
        let counters = AdmissionCounters::default();
        let shed = [0u64; Technique::ALL.len()];
        let base = ServeReport::assemble(&cfg, counters, &shed, &[], &[], None);
        let resilient = ServeReport::assemble(
            &cfg,
            counters,
            &shed,
            &[],
            &[],
            Some(ResilienceReport::default()),
        );
        let a = base.to_json().to_string_pretty();
        let b = resilient.to_json().to_string_pretty();
        assert!(!a.contains("\"resilience\""), "baseline must not grow a section");
        assert!(b.contains("\"resilience\""));
    }

    #[test]
    fn outcome_counts_partition_offered() {
        let o = OutcomeCounts {
            completed_clean: 5,
            retried_ok: 2,
            hedge_won: 1,
            timed_out: 3,
            failed: 1,
            shed: 4,
            rejected: 2,
        };
        assert_eq!(o.total(), 18);
        assert_eq!(o.completed_total(), 8);
    }
}
