//! Request model for the serving front end.
//!
//! A [`Request`] names one of the paper's 13 benchmark phases plus a size
//! tier; the fleet resolves it to a concrete memsim [`Workload`]
//! (`pudiannao_memsim::Workload`) through the
//! [`ServingCatalog`](crate::catalog::ServingCatalog). Requests carrying a
//! technique id the catalog does not know
//! ([`RequestKind::Unknown`]) are rejected at admission instead of
//! crashing a shard.

use pudiannao_codegen::phases::Phase;
use pudiannao_memsim::Technique;

/// Maps a benchmark phase to the ML technique family whose functional
/// unit configuration it needs on a shard (Table 1 of the paper).
#[must_use]
pub fn technique_of(phase: Phase) -> Technique {
    match phase {
        Phase::KnnPrediction => Technique::Knn,
        Phase::KMeansClustering => Technique::KMeans,
        Phase::DnnPrediction | Phase::DnnPretraining | Phase::DnnGlobalTraining => Technique::Dnn,
        Phase::LrTraining | Phase::LrPrediction => Technique::LinReg,
        Phase::SvmTraining | Phase::SvmPrediction => Technique::Svm,
        Phase::NbTraining | Phase::NbPrediction => Technique::Nb,
        Phase::CtTraining | Phase::CtPrediction => Technique::Ct,
    }
}

/// Problem-size tier of a request. Serving traffic is dominated by small
/// problems with a heavy tail, so the generator draws Small/Medium/Large
/// at 60%/30%/10%.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeTier {
    Small,
    Medium,
    Large,
}

impl SizeTier {
    /// All tiers, smallest first.
    pub const ALL: [SizeTier; 3] = [SizeTier::Small, SizeTier::Medium, SizeTier::Large];

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SizeTier::Small => "small",
            SizeTier::Medium => "medium",
            SizeTier::Large => "large",
        }
    }

    /// Index into [`SizeTier::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SizeTier::Small => 0,
            SizeTier::Medium => 1,
            SizeTier::Large => 2,
        }
    }
}

/// What a request asks the fleet to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// One of the 13 supported benchmark phases.
    Phase(Phase),
    /// A technique id outside the catalog (malformed or future client).
    /// Carried so admission can count and reject it.
    Unknown(u8),
}

/// One inference/training request in the open-loop stream.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Position in the generated stream (0-based, unique).
    pub id: u64,
    /// Arrival time in simulated nanoseconds since stream start.
    pub arrival_ns: u64,
    /// Requested phase (or an unknown technique id).
    pub kind: RequestKind,
    /// Problem-size tier.
    pub tier: SizeTier,
}

impl Request {
    /// The technique family this request needs, or `None` for unknown ids.
    #[must_use]
    pub fn technique(&self) -> Option<Technique> {
        match self.kind {
            RequestKind::Phase(p) => Some(technique_of(p)),
            RequestKind::Unknown(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_maps_to_a_technique() {
        for phase in Phase::ALL {
            let req = Request {
                id: 0,
                arrival_ns: 0,
                kind: RequestKind::Phase(phase),
                tier: SizeTier::Small,
            };
            assert!(req.technique().is_some(), "{phase:?}");
        }
        let bad = Request {
            id: 1,
            arrival_ns: 0,
            kind: RequestKind::Unknown(200),
            tier: SizeTier::Small,
        };
        assert_eq!(bad.technique(), None);
    }

    #[test]
    fn tier_indices_match_all_order() {
        for (i, tier) in SizeTier::ALL.iter().enumerate() {
            assert_eq!(tier.index(), i);
        }
    }
}
