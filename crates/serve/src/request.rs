//! Request model for the serving front end.
//!
//! A [`Request`] names one of the paper's 13 benchmark phases plus a size
//! tier; the fleet resolves it to a concrete memsim [`Workload`]
//! (`pudiannao_memsim::Workload`) through the
//! [`ServingCatalog`](crate::catalog::ServingCatalog). Requests carrying a
//! technique id the catalog does not know
//! ([`RequestKind::Unknown`]) are rejected at admission instead of
//! crashing a shard.

use pudiannao_codegen::phases::Phase;
use pudiannao_memsim::Technique;

/// Maps a benchmark phase to the ML technique family whose functional
/// unit configuration it needs on a shard (Table 1 of the paper).
#[must_use]
pub fn technique_of(phase: Phase) -> Technique {
    match phase {
        Phase::KnnPrediction => Technique::Knn,
        Phase::KMeansClustering => Technique::KMeans,
        Phase::DnnPrediction | Phase::DnnPretraining | Phase::DnnGlobalTraining => Technique::Dnn,
        Phase::LrTraining | Phase::LrPrediction => Technique::LinReg,
        Phase::SvmTraining | Phase::SvmPrediction => Technique::Svm,
        Phase::NbTraining | Phase::NbPrediction => Technique::Nb,
        Phase::CtTraining | Phase::CtPrediction => Technique::Ct,
    }
}

/// Problem-size tier of a request. Serving traffic is dominated by small
/// problems with a heavy tail, so the generator draws Small/Medium/Large
/// at 60%/30%/10%.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeTier {
    Small,
    Medium,
    Large,
}

impl SizeTier {
    /// All tiers, smallest first.
    pub const ALL: [SizeTier; 3] = [SizeTier::Small, SizeTier::Medium, SizeTier::Large];

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SizeTier::Small => "small",
            SizeTier::Medium => "medium",
            SizeTier::Large => "large",
        }
    }

    /// Index into [`SizeTier::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SizeTier::Small => 0,
            SizeTier::Medium => 1,
            SizeTier::Large => 2,
        }
    }
}

/// Tenant/priority tier of a request. The SLO machinery is tiered:
/// deadlines tighten and shedding protection grows from Bronze to Gold,
/// so under overload or chaos the fleet degrades lowest-priority-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort batch traffic: shed first, widest deadline.
    Bronze,
    /// Standard interactive traffic.
    Silver,
    /// Premium tenants: shed last, tightest deadline.
    Gold,
}

impl Priority {
    /// All tiers, lowest priority first (matches the `Ord` order).
    pub const ALL: [Priority; 3] = [Priority::Bronze, Priority::Silver, Priority::Gold];

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Bronze => "bronze",
            Priority::Silver => "silver",
            Priority::Gold => "gold",
        }
    }

    /// Index into [`Priority::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Bronze => 0,
            Priority::Silver => 1,
            Priority::Gold => 2,
        }
    }
}

/// What a request asks the fleet to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// One of the 13 supported benchmark phases.
    Phase(Phase),
    /// A technique id outside the catalog (malformed or future client).
    /// Carried so admission can count and reject it.
    Unknown(u8),
}

/// One inference/training request in the open-loop stream.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Position in the generated stream (0-based, unique).
    pub id: u64,
    /// Arrival time in simulated nanoseconds since stream start.
    pub arrival_ns: u64,
    /// Requested phase (or an unknown technique id).
    pub kind: RequestKind,
    /// Problem-size tier.
    pub tier: SizeTier,
    /// Tenant/priority tier (drawn from a side stream by the generator,
    /// so adding it never perturbed the pinned arrival sequence).
    pub priority: Priority,
}

impl Request {
    /// The technique family this request needs, or `None` for unknown ids.
    #[must_use]
    pub fn technique(&self) -> Option<Technique> {
        match self.kind {
            RequestKind::Phase(p) => Some(technique_of(p)),
            RequestKind::Unknown(_) => None,
        }
    }
}

/// One dispatch attempt of a request. The resilient fleet may run a
/// request several times — retries after transient failures, a hedged
/// duplicate against a straggler — and every such attempt travels the
/// queue and the shards as its own `Leg`.
#[derive(Clone, Copy, Debug)]
pub struct Leg {
    /// The request this leg serves.
    pub request: Request,
    /// Retry generation: 0 for the first dispatch, +1 per retry.
    pub attempt: u32,
    /// Whether this leg is a hedged duplicate racing the primary.
    pub hedge: bool,
    /// When this leg entered the admission queue: the request's arrival
    /// for primaries, the release time for retry/hedge legs. Purely
    /// observational — the queue wait and backoff attribution in the
    /// trace layer reads it; nothing schedules off it.
    pub enqueued_ns: u64,
}

impl Leg {
    /// The first (primary) leg of a freshly admitted request.
    #[must_use]
    pub fn first(request: Request) -> Leg {
        Leg { request, attempt: 0, hedge: false, enqueued_ns: request.arrival_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_maps_to_a_technique() {
        for phase in Phase::ALL {
            let req = Request {
                id: 0,
                arrival_ns: 0,
                kind: RequestKind::Phase(phase),
                tier: SizeTier::Small,
                priority: Priority::Silver,
            };
            assert!(req.technique().is_some(), "{phase:?}");
        }
        let bad = Request {
            id: 1,
            arrival_ns: 0,
            kind: RequestKind::Unknown(200),
            tier: SizeTier::Small,
            priority: Priority::Bronze,
        };
        assert_eq!(bad.technique(), None);
    }

    #[test]
    fn tier_indices_match_all_order() {
        for (i, tier) in SizeTier::ALL.iter().enumerate() {
            assert_eq!(tier.index(), i);
        }
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        // Shedding order leans on the derived Ord: Bronze goes first.
        assert!(Priority::Bronze < Priority::Silver && Priority::Silver < Priority::Gold);
    }

    #[test]
    fn first_leg_is_primary() {
        let req = Request {
            id: 7,
            arrival_ns: 10,
            kind: RequestKind::Phase(Phase::KnnPrediction),
            tier: SizeTier::Small,
            priority: Priority::Gold,
        };
        let leg = Leg::first(req);
        assert_eq!(leg.attempt, 0);
        assert!(!leg.hedge);
        assert_eq!(leg.request.id, 7);
    }
}
