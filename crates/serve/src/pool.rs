//! A deterministic fork-join harness shared by the serving fleet and the
//! reproduction experiments.
//!
//! [`run_indexed`] executes a list of independent jobs on scoped worker
//! threads ([`std::thread::scope`], no external dependencies) and returns
//! their results **in job order**, so callers that serialise the results
//! (e.g. the fleet simulator writing `serve_report.json`, or `repro_all`
//! writing `repro_summary.json`) produce byte-identical output whether the
//! jobs ran sequentially or on any number of workers.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be capped (or forced to 1) with the `REPRO_THREADS` environment
//! variable. With one worker the jobs run inline on the calling thread —
//! no threads are spawned at all.
//!
//! Only *result order* is deterministic: jobs that print to stdout may
//! interleave their lines when more than one worker runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// Parses a `REPRO_THREADS`-style value: a positive worker count, or
/// `None` when unset or invalid. An invalid value is reported loudly on
/// stderr (once per process) instead of silently falling back — a typo'd
/// `REPRO_THREADS=fulll` should not quietly change the worker count.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            static WARN_ONCE: Once = Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid REPRO_THREADS={raw:?} \
                     (expected a positive integer); using the hardware default"
                );
            });
            None
        }
    }
}

/// The number of workers [`run_indexed`] will use for `jobs` jobs: the
/// `REPRO_THREADS` override if set (and a positive integer), otherwise
/// the machine's available parallelism, never more than the job count and
/// never less than 1.
#[must_use]
pub fn worker_count(jobs: usize) -> usize {
    let hardware = std::thread::available_parallelism().map(std::num::NonZeroUsize::get);
    let env = std::env::var("REPRO_THREADS").ok();
    parse_threads(env.as_deref()).unwrap_or_else(|| hardware.unwrap_or(1)).min(jobs.max(1))
}

/// Runs every job and returns the results in the jobs' original order.
///
/// Jobs are claimed work-stealing style (an atomic next-job counter), so
/// a slow job never blocks the others, and each result is stored in the
/// slot matching its job index — the output `Vec` is independent of
/// scheduling. A panicking job propagates its panic to the caller when
/// the scope joins.
pub fn run_indexed<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job mutex never poisoned: each slot is taken exactly once")
                    .take()
                    .expect("each job index is claimed by exactly one worker");
                let out = job();
                *results[i].lock().expect("result mutex never poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex never poisoned")
                .expect("every claimed job stored its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn results_keep_job_order() {
        // Jobs finish in scrambled order (later jobs sleep less), but the
        // output must stay index-aligned.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) % 5));
                    i * i
                }
            })
            .collect();
        let got = run_indexed(jobs);
        let want: Vec<u64> = (0..16).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(run_indexed(jobs).is_empty());
        assert_eq!(worker_count(0), 1);
    }

    #[test]
    fn boxed_jobs_run() {
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| "b".to_string()),
            Box::new(|| "c".to_string()),
        ];
        assert_eq!(run_indexed(jobs), vec!["a", "b", "c"]);
    }

    #[test]
    fn worker_count_never_exceeds_jobs() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(2) <= 2);
        assert!(worker_count(1000) >= 1);
    }
}
