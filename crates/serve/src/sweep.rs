//! Shard-count scaling sweep, feeding both `serve_report.json` and the
//! perf-regression gate (`BENCH_history.jsonl`), plus the fault-intensity
//! x defence-arm chaos sweep behind `chaos_report.json`.

use pudiannao_accel::json::Value;

use crate::chaos::{ChaosConfig, Defense};
use crate::fleet::{serve, serve_resilient, FleetConfig};
use crate::gen::GeneratorConfig;
use crate::report::ServeReport;

/// Shard counts the sweep covers.
pub const SWEEP_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// One sweep measurement.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    pub shards: usize,
    pub completed: u64,
    pub shed: u64,
    pub throughput_rps: f64,
    pub p99_ns: u64,
    /// Mean per-shard busy fraction (integer per-mille): the scaling
    /// signal the perf gate watches — throughput can hide a fleet that
    /// adds shards while each one idles more.
    pub util_permille: u64,
}

impl SweepPoint {
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("shards", self.shards as u64)
            .with("completed", self.completed)
            .with("shed", self.shed)
            .with("throughput_rps", self.throughput_rps)
            .with("p99_ns", self.p99_ns)
            .with("util_permille", self.util_permille)
    }
}

/// Runs the same stream against 1/2/4/8-shard fleets.
#[must_use]
pub fn scaling_sweep(gen: &GeneratorConfig) -> Vec<SweepPoint> {
    SWEEP_SHARDS
        .iter()
        .map(|&shards| {
            let report = serve(&FleetConfig::with_shards(shards), gen);
            let util_permille = report.shards.iter().map(|s| s.utilization_permille).sum::<u64>()
                / report.shards.len().max(1) as u64;
            SweepPoint {
                shards,
                completed: report.completed,
                shed: report.counters.shed,
                throughput_rps: report.throughput_rps,
                p99_ns: report.p99_ns,
                util_permille,
            }
        })
        .collect()
}

/// The pinned stream the perf gate tracks: small enough to run on every
/// `bench.sh` invocation, big enough that throughput is stable. Changing
/// this config invalidates history records, so treat it like the cache
/// config fingerprint: don't.
#[must_use]
pub fn gate_generator() -> GeneratorConfig {
    GeneratorConfig { requests: 8_000, ..GeneratorConfig::heavy(0x5e7e_1234) }
}

/// The sweep `scripts/bench.sh` records and `perf_diff --check` gates.
#[must_use]
pub fn gate_sweep() -> Vec<SweepPoint> {
    scaling_sweep(&gate_generator())
}

/// Seed of the pinned chaos plans the chaos sweep injects (arbitrary but
/// fixed: `chaos_report.json` and the `check.sh --chaos` counts pin it).
pub const CHAOS_SEED: u64 = 0xc4a0_5eed;

/// The defence arms the chaos sweep compares, weakest first.
pub const DEFENSE_ARMS: [&str; 3] = ["none", "retries", "full"];

/// Builds one named defence arm against the measured chaos-off p99.
#[must_use]
pub fn defense_arm(arm: &str, p99_ns: u64) -> Defense {
    match arm {
        "none" => Defense::none(p99_ns),
        "retries" => Defense::retries(p99_ns),
        _ => Defense::full(p99_ns),
    }
}

/// One cell of the chaos sweep: fault intensity x defence arm.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Fault intensity (0..=2, see [`ChaosConfig::intensity`]).
    pub intensity: u32,
    /// Defence arm name (one of [`DEFENSE_ARMS`]).
    pub defense: &'static str,
    pub report: ServeReport,
}

impl ChaosCell {
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("intensity", ChaosConfig::intensity_label(self.intensity))
            .with("defense", self.defense)
            .with("report", self.report.to_json())
    }
}

/// The fleet the chaos sweep runs on: the widest point of the scaling
/// sweep. Fault-tolerance is evaluated with redundancy headroom (the
/// N+1 provisioning a real fleet carries) — retries and hedges recover
/// failures by spending idle capacity. On a saturated fleet every
/// recovered leg just displaces a fresh request at the admission cap,
/// and no defence can win that trade.
#[must_use]
pub fn chaos_fleet() -> FleetConfig {
    FleetConfig::with_shards(*SWEEP_SHARDS.last().expect("sweep is non-empty"))
}

/// Runs the full fault-intensity x defence grid over one stream.
/// `baseline_p99_ns` is the measured chaos-off p99 the deadlines, backoff
/// and hedge delay derive from.
#[must_use]
pub fn chaos_sweep(gen: &GeneratorConfig, baseline_p99_ns: u64) -> Vec<ChaosCell> {
    let fleet = chaos_fleet();
    let mut cells = Vec::with_capacity(3 * DEFENSE_ARMS.len());
    for intensity in 0..3u32 {
        let chaos = ChaosConfig::intensity(CHAOS_SEED, intensity);
        for arm in DEFENSE_ARMS {
            let defense = defense_arm(arm, baseline_p99_ns);
            let report = serve_resilient(&fleet, gen, &chaos, &defense);
            cells.push(ChaosCell { intensity, defense: arm, report });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_shards_never_complete_less() {
        let gen = GeneratorConfig { requests: 600, ..GeneratorConfig::smoke(17) };
        let points = scaling_sweep(&gen);
        assert_eq!(points.len(), SWEEP_SHARDS.len());
        for pair in points.windows(2) {
            assert!(
                pair[1].completed >= pair[0].completed,
                "{} shards completed {} < {} shards' {}",
                pair[1].shards,
                pair[1].completed,
                pair[0].shards,
                pair[0].completed
            );
        }
    }
}
