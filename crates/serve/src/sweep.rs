//! Shard-count scaling sweep, feeding both `serve_report.json` and the
//! perf-regression gate (`BENCH_history.jsonl`).

use pudiannao_accel::json::Value;

use crate::fleet::{serve, FleetConfig};
use crate::gen::GeneratorConfig;

/// Shard counts the sweep covers.
pub const SWEEP_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// One sweep measurement.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    pub shards: usize,
    pub completed: u64,
    pub shed: u64,
    pub throughput_rps: f64,
    pub p99_ns: u64,
    /// Mean per-shard busy fraction (integer per-mille): the scaling
    /// signal the perf gate watches — throughput can hide a fleet that
    /// adds shards while each one idles more.
    pub util_permille: u64,
}

impl SweepPoint {
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("shards", self.shards as u64)
            .with("completed", self.completed)
            .with("shed", self.shed)
            .with("throughput_rps", self.throughput_rps)
            .with("p99_ns", self.p99_ns)
            .with("util_permille", self.util_permille)
    }
}

/// Runs the same stream against 1/2/4/8-shard fleets.
#[must_use]
pub fn scaling_sweep(gen: &GeneratorConfig) -> Vec<SweepPoint> {
    SWEEP_SHARDS
        .iter()
        .map(|&shards| {
            let report = serve(&FleetConfig::with_shards(shards), gen);
            let util_permille = report.shards.iter().map(|s| s.utilization_permille).sum::<u64>()
                / report.shards.len().max(1) as u64;
            SweepPoint {
                shards,
                completed: report.completed,
                shed: report.counters.shed,
                throughput_rps: report.throughput_rps,
                p99_ns: report.p99_ns,
                util_permille,
            }
        })
        .collect()
}

/// The pinned stream the perf gate tracks: small enough to run on every
/// `bench.sh` invocation, big enough that throughput is stable. Changing
/// this config invalidates history records, so treat it like the cache
/// config fingerprint: don't.
#[must_use]
pub fn gate_generator() -> GeneratorConfig {
    GeneratorConfig { requests: 8_000, ..GeneratorConfig::heavy(0x5e7e_1234) }
}

/// The sweep `scripts/bench.sh` records and `perf_diff --check` gates.
#[must_use]
pub fn gate_sweep() -> Vec<SweepPoint> {
    scaling_sweep(&gate_generator())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_shards_never_complete_less() {
        let gen = GeneratorConfig { requests: 600, ..GeneratorConfig::smoke(17) };
        let points = scaling_sweep(&gen);
        assert_eq!(points.len(), SWEEP_SHARDS.len());
        for pair in points.windows(2) {
            assert!(
                pair[1].completed >= pair[0].completed,
                "{} shards completed {} < {} shards' {}",
                pair[1].shards,
                pair[1].completed,
                pair[0].shards,
                pair[0].completed
            );
        }
    }
}
