//! The fleet: a pool of simulated PuDianNao devices ("shards") draining
//! the admission queue, driven as a discrete-event simulation.
//!
//! Each shard owns one reusable `SimdEngine` (the cache-simulating SIMD
//! datapath from memsim) that is **reset, never rebuilt** between batches
//! — the PR-5 profiling result (~87ns reset vs ~252ns rebuild) becomes the
//! serving cost model: every batch pays the reset as setup, and switching
//! technique families additionally pays a reconfiguration charge for
//! re-arming the functional units (the paper's polyvalent datapath is
//! time-shared across the seven techniques). Batching by technique exists
//! precisely to amortise that reconfiguration.
//!
//! The event loop is single-threaded and deterministic: ingest arrivals,
//! dispatch one batch to every idle shard, execute the dispatched wave —
//! the only parallel part, via [`pool::run_indexed`], whose results come
//! back in wave order regardless of worker count — then advance simulated
//! time to the next arrival or shard-completion event. One engine cycle is
//! one simulated nanosecond (1 GHz device clock, as in the paper's
//! evaluation).
//!
//! ## Resilience
//!
//! [`run_fleet_resilient`] layers the chaos/defence machinery on top
//! without touching the baseline path: with [`ChaosConfig::off`] and
//! [`Defense::off`] the loop takes byte-for-byte the same decisions as
//! [`run_fleet`]. Otherwise every dispatch attempt is a [`Leg`] tracked by
//! a per-request `Flight`:
//!
//! - legs that draw a transient fault or are killed by a shard crash come
//!   back failed; bounded **retries** with exponential backoff (in
//!   simulated ns) re-queue a fresh leg through a ready-heap;
//! - a slow or failed primary spawns one **hedged** duplicate after a
//!   p99-derived delay; the request resolves to whichever leg finishes
//!   first, and a hedge whose primary already resolved is cancelled at
//!   pick time;
//! - overdue legs (per-priority **deadlines**) are dropped at pick time
//!   and counted as timeouts; a completion that lands past its deadline
//!   still counts as completed but misses its SLO;
//! - a shard accumulating consecutive failed legs is **quarantined** for
//!   a cooldown and drained back into rotation afterwards.
//!
//! Every request resolves exactly once; the resulting outcome classes
//! partition the offered load (the conservation invariant the proptests
//! pin down).

use pudiannao_memsim::{batch, AccessBlock, BatchSink, CacheConfig, SimdEngine, Technique};

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::admission::{AdmissionConfig, AdmissionOutcome, AdmissionQueue};
use crate::catalog::{ServingCatalog, TraceCache, TraceCacheStats};
use crate::chaos::{ChaosConfig, Defense, ShardChaos};
use crate::metrics::{MetricsConfig, MetricsRecorder};
use crate::pool;
use crate::report::{
    shard_verdict, Completion, LatencyBreakdown, ObservabilityReport, ResilienceReport,
    ServeReport, ShardResilience, TierBreakdown,
};
use crate::request::{Leg, Request, RequestKind};
use crate::trace::{FleetTrace, LegOutcome, RootOutcome, SpanEvent, TraceConfig};

/// Cost, in simulated ns, of resetting a shard's engine for a new batch
/// (measured reuse-path cost from the PR-5 profiling pass).
pub const BATCH_SETUP_NS: u64 = 87;

/// Additional cost, in simulated ns, of re-arming the datapath when a
/// shard switches technique families between batches (measured
/// full-rebuild cost from the same profiling pass).
pub const RECONFIG_NS: u64 = 252;

/// Default per-shard trace-template arena: comfortably holds every
/// catalog template on the paper-default cache geometry (measured ~4 MB
/// of packed entries across all 39 slots on the heavy stream), with 4x
/// headroom for bigger tiers.
pub const TRACE_CACHE_BYTES: usize = 16 << 20;

/// Fleet-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub shards: usize,
    /// Max requests per dispatched batch.
    pub max_batch: usize,
    /// Admission-queue bounds.
    pub admission: AdmissionConfig,
    /// Per-shard trace-template arena budget in bytes; 0 disables the
    /// cache (every leg regenerates its trace). Replay is
    /// counter-identical to fresh generation, so this knob only moves
    /// wall-clock and memory — never a report byte.
    pub trace_cache_bytes: usize,
}

impl FleetConfig {
    /// The 4-shard fleet `serve_bench` runs by default.
    #[must_use]
    pub fn paper_default() -> Self {
        FleetConfig {
            shards: 4,
            max_batch: 16,
            admission: AdmissionConfig::paper_default(),
            trace_cache_bytes: TRACE_CACHE_BYTES,
        }
    }

    /// Same knobs with a different shard count (for the scaling sweep).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        FleetConfig { shards, ..FleetConfig::paper_default() }
    }
}

/// Observability configuration for one fleet run: which of the two layers
/// (per-request span tracing, windowed metrics) to record. Both default
/// off, and [`run_fleet_resilient`] always passes [`ObserveConfig::off`]
/// — unobserved runs never build an observer, so their reports stay
/// byte-identical to the pre-observability schema.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Record per-request lifecycle spans into a bounded ring.
    pub trace: Option<TraceConfig>,
    /// Record the windowed metrics time series.
    pub metrics: Option<MetricsConfig>,
}

impl ObserveConfig {
    /// No observation — the baseline code path.
    #[must_use]
    pub fn off() -> Self {
        ObserveConfig::default()
    }

    /// Both layers on, with the span ring sized for a `requests`-long
    /// stream and the default metrics window.
    #[must_use]
    pub fn full(requests: u64) -> Self {
        ObserveConfig {
            trace: Some(TraceConfig::sized_for(requests)),
            metrics: Some(MetricsConfig::default()),
        }
    }

    /// `true` when neither layer records anything.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.trace.is_none() && self.metrics.is_none()
    }
}

/// How one dispatched leg ended on the shard.
#[derive(Clone, Copy, Debug)]
enum LegFate {
    /// Finished cleanly at this simulated instant.
    Done(u64),
    /// Drew a transient failure, observed at this instant.
    Transient(u64),
    /// Killed by a shard crash at this instant.
    Crashed(u64),
}

/// One executed leg as reported back by a shard.
#[derive(Clone, Copy, Debug)]
struct LegResult {
    leg: Leg,
    phase: pudiannao_codegen::phases::Phase,
    fate: LegFate,
    /// When this leg's kernel started on the shard (after the batch's
    /// reconfig+setup and its batch-mates ahead of it) — the left edge of
    /// its trace span.
    start_ns: u64,
    /// This leg's own (slowdown-scaled) service time, excluding queueing
    /// and batch-mates — the straggler signal the hedge trigger watches.
    /// (End-to-end batch time would flag the tail of every deep batch.)
    service_ns: u64,
}

/// Always-computed timing facts of one dispatched batch — plain
/// arithmetic on values the shard derives anyway, so keeping them on the
/// result costs nothing. The observability layer's only window into
/// shard execution, and the source of the exact latency attribution.
#[derive(Clone, Copy, Debug)]
struct BatchFacts {
    technique: Technique,
    /// Dispatch instant (the wave's `now`).
    start_ns: u64,
    /// Reconfiguration charge paid at the head (0 if none).
    reconfig_ns: u64,
    /// When member legs started executing (`start + reconfig + setup`).
    exec_start_ns: u64,
    /// When the shard stopped doing useful work (early on a crash).
    busy_until_ns: u64,
    /// The crash window that cut the batch short, if any.
    crash: Option<(u64, u64)>,
}

/// One simulated device: a reusable engine (plus its batching scratch
/// buffer), utilisation counters, and — under chaos — its drawn fate and
/// health-tracking state.
struct Shard {
    engine: SimdEngine,
    /// SoA scratch for the batched trace path, reused across requests.
    block: AccessBlock,
    /// Recorded trace templates; `None` when `trace_cache_bytes` is 0.
    trace_cache: Option<TraceCache>,
    last_technique: Option<Technique>,
    free_at_ns: u64,
    batches: u64,
    requests: u64,
    reconfigs: u64,
    busy_ns: u64,
    ops: u64,
    offchip_bytes: u64,
    /// Chaos fate of this shard; `None` on the fault-free path.
    chaos: Option<ShardChaos>,
    /// Consecutive failed legs, for the quarantine trigger.
    fail_streak: u32,
    /// Until when the health tracker has pulled this shard from rotation.
    quarantined_until_ns: u64,
    quarantines: u64,
    quarantine_down_ns: u64,
}

impl Shard {
    fn new(cache: &CacheConfig, chaos: Option<ShardChaos>, trace_cache_bytes: usize) -> Shard {
        Shard {
            engine: SimdEngine::new(cache.clone()).expect("paper cache config is valid"),
            block: AccessBlock::with_capacity(cache.line_bytes, batch::FLUSH_ACCESSES + 32),
            trace_cache: (trace_cache_bytes > 0).then(|| TraceCache::new(trace_cache_bytes)),
            last_technique: None,
            free_at_ns: 0,
            batches: 0,
            requests: 0,
            reconfigs: 0,
            busy_ns: 0,
            ops: 0,
            offchip_bytes: 0,
            chaos,
            fail_streak: 0,
            quarantined_until_ns: 0,
            quarantines: 0,
            quarantine_down_ns: 0,
        }
    }

    /// Executes one technique-homogeneous batch starting at `start_ns`;
    /// returns the fate of every leg. The engine is reset once per batch,
    /// so requests in a batch share cache state — the locality win
    /// batching buys on top of amortised reconfiguration.
    ///
    /// Chaos hooks: service time is scaled by the shard's slowdown draw,
    /// each leg may draw a transient failure (a pure hash of its
    /// identifiers), and a crash window opening mid-batch kills every leg
    /// that had not yet completed and idles the shard until repair.
    fn run_batch(
        &mut self,
        technique: Technique,
        legs: &[Leg],
        catalog: &ServingCatalog,
        start_ns: u64,
    ) -> (BatchFacts, Vec<LegResult>) {
        let mut t = start_ns;
        let mut reconfig_ns = 0;
        if self.last_technique != Some(technique) {
            t = t.saturating_add(RECONFIG_NS);
            reconfig_ns = RECONFIG_NS;
            if self.last_technique.is_some() {
                self.reconfigs += 1;
            }
            self.last_technique = Some(technique);
        }
        t = t.saturating_add(BATCH_SETUP_NS);
        let exec_start_ns = t;
        self.engine.reset();
        let slowdown = self.chaos.as_ref().map_or(1000, |c| c.slowdown_permille);
        let mut out = Vec::with_capacity(legs.len());
        let mut prev_cycles = 0u64;
        for leg in legs {
            let RequestKind::Phase(phase) = leg.request.kind else {
                unreachable!("admission rejects unknown techniques before dispatch");
            };
            // Batched execution: the request's ops pack into the SoA
            // scratch block and stream through the cache in block
            // passes — counter-identical to tracing straight into the
            // engine, which is why the completion timestamps (read off
            // the cumulative cycle counter after the flush) don't move.
            // With the template cache, a previously seen (phase, tier)
            // replays its recorded block instead of regenerating it;
            // same equivalence, minus the whole generation pass.
            match &mut self.trace_cache {
                Some(cache) => cache.execute(
                    catalog,
                    phase,
                    leg.request.tier,
                    &mut self.engine,
                    &mut self.block,
                ),
                None => {
                    let mut sink = BatchSink::new(&mut self.engine, &mut self.block);
                    catalog.get(phase, leg.request.tier).trace(&mut sink);
                    sink.finish();
                }
            }
            let cycles = self.engine.report().cycles;
            let done_ns = t.saturating_add(scale_ns(cycles, slowdown));
            out.push(LegResult {
                leg: *leg,
                phase,
                fate: LegFate::Done(done_ns),
                start_ns: t.saturating_add(scale_ns(prev_cycles, slowdown)),
                service_ns: scale_ns(cycles.saturating_sub(prev_cycles), slowdown),
            });
            prev_cycles = cycles;
        }
        let stats = self.engine.report();
        let mut end_ns = t.saturating_add(scale_ns(stats.cycles, slowdown));
        let mut busy_until = end_ns;
        let mut crash = None;
        if let Some(chaos) = &mut self.chaos {
            // Transient failures first: a pure per-leg hash, so the
            // verdict is the same whichever shard or wave runs the leg.
            if chaos.plan().transient_per_mille > 0 {
                for r in &mut out {
                    if chaos.plan().leg_fails(r.leg.request.id, r.leg.attempt, r.leg.hedge) {
                        let LegFate::Done(d) = r.fate else { unreachable!() };
                        r.fate = LegFate::Transient(d);
                    }
                }
            }
            // Then the crash window, which overrides: every leg that had
            // not completed when the shard went down is lost, and the
            // shard stays down (and loses its datapath configuration)
            // until the window closes.
            if let Some((crash_ns, repair_ns)) = chaos.crash_in(start_ns, end_ns) {
                for r in &mut out {
                    let at = match r.fate {
                        LegFate::Done(d) | LegFate::Transient(d) => d,
                        LegFate::Crashed(_) => continue,
                    };
                    if at > crash_ns {
                        r.fate = LegFate::Crashed(crash_ns);
                    }
                }
                self.last_technique = None;
                busy_until = crash_ns.max(start_ns);
                end_ns = repair_ns;
                crash = Some((crash_ns, repair_ns));
            }
        }
        // Health streak, at batch granularity: a batch that lost *every*
        // leg extends the streak, any success resets it. (Per-leg
        // counting would count one crash as a dozen strikes and
        // quarantine a shard that already self-healed.) Always zero on
        // the fault-free path.
        let any_ok = out.iter().any(|r| matches!(r.fate, LegFate::Done(_)));
        if any_ok {
            self.fail_streak = 0;
        } else if !out.is_empty() {
            self.fail_streak = self.fail_streak.saturating_add(1);
        }
        self.batches += 1;
        self.requests += legs.len() as u64;
        self.busy_ns = self.busy_ns.saturating_add(busy_until.saturating_sub(start_ns));
        self.ops += stats.ops;
        self.offchip_bytes += stats.offchip_bytes;
        self.free_at_ns = end_ns;
        let facts = BatchFacts {
            technique,
            start_ns,
            reconfig_ns,
            exec_start_ns,
            busy_until_ns: busy_until,
            crash,
        };
        (facts, out)
    }
}

/// Service time under the shard's slowdown draw; exact on the fault-free
/// path (1000 per-mille multiplies by one).
fn scale_ns(cycles: u64, slowdown_permille: u64) -> u64 {
    if slowdown_permille == 1000 {
        cycles
    } else {
        u64::try_from(u128::from(cycles) * u128::from(slowdown_permille) / 1000).unwrap_or(u64::MAX)
    }
}

/// The best (earliest) successful leg of a flight so far.
#[derive(Clone, Copy, Debug)]
struct Best {
    done_ns: u64,
    dispatched_ns: u64,
    hedge: bool,
    retried: bool,
    /// The winning leg's exact latency attribution (observational).
    breakdown: LatencyBreakdown,
}

/// Lifecycle state of one in-flight request: how many legs are queued or
/// running, how many retries it has burned, and the best completion seen.
#[derive(Clone, Copy, Debug)]
struct Flight {
    request: Request,
    outstanding: u32,
    attempts_used: u32,
    hedged: bool,
    best: Option<Best>,
    last_fail_ns: u64,
    /// Latest instant any leg of this flight was observed ending (success
    /// or failure) — the root span closes no earlier than this, so leg
    /// spans never outlive their root. Purely observational.
    last_seen_ns: u64,
}

/// Exact five-way split of a completed leg's end-to-end latency. The
/// segments partition `done_ns - arrival_ns` with no gaps or overlaps:
/// enqueue times are monotone through dispatch, and the shard charges
/// reconfig then setup then service contiguously from the dispatch
/// instant.
fn breakdown_of(leg: &Leg, facts: &BatchFacts, done_ns: u64) -> LatencyBreakdown {
    LatencyBreakdown {
        backoff_ns: leg.enqueued_ns.saturating_sub(leg.request.arrival_ns),
        queue_ns: facts.start_ns.saturating_sub(leg.enqueued_ns),
        reconfig_ns: facts.reconfig_ns,
        setup_ns: facts
            .exec_start_ns
            .saturating_sub(facts.start_ns)
            .saturating_sub(facts.reconfig_ns),
        service_ns: done_ns.saturating_sub(facts.exec_start_ns),
    }
}

/// Read-only recorder threaded through an observed run. Every hook runs
/// in the sequential wave-order loop and only accumulates — nothing here
/// feeds a decision back into the simulation, which is why a traced run's
/// `ServeReport` aggregates are identical to an untraced run's (the
/// span-conservation proptests pin this).
struct Observer {
    trace: Option<FleetTrace>,
    metrics: Option<MetricsRecorder>,
    tiers: [TierBreakdown; 3],
    /// Per-lane open "queued" interval: `(since_ns, peak_depth)`. Busy
    /// spans are merged at depth 0↔>0 transitions, so the spans on a lane
    /// track never overlap.
    lane_open: [Option<(u64, u64)>; Technique::ALL.len()],
}

impl Observer {
    fn new(observe: &ObserveConfig, shards: usize) -> Observer {
        Observer {
            trace: observe.trace.as_ref().map(FleetTrace::new),
            metrics: observe.metrics.as_ref().map(|m| MetricsRecorder::new(m, shards)),
            tiers: [TierBreakdown::default(); 3],
            lane_open: [None; Technique::ALL.len()],
        }
    }

    fn push(&mut self, event: SpanEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
    }

    /// One freshly offered request: open its root span (admitted) or
    /// record the shed/reject.
    fn on_offered(&mut self, request: &Request, outcome: AdmissionOutcome) {
        let at = request.arrival_ns;
        match outcome {
            AdmissionOutcome::Admitted => {
                let lane = request.technique().expect("admitted requests are well-formed").index();
                self.push(SpanEvent::RootOpen { id: request.id, lane, t: at });
            }
            AdmissionOutcome::Shed => {
                if let Some(technique) = request.technique() {
                    self.push(SpanEvent::Shed { lane: technique.index(), t: at });
                }
                if let Some(m) = &mut self.metrics {
                    m.on_shed(at);
                }
            }
            AdmissionOutcome::Rejected => {
                if let Some(m) = &mut self.metrics {
                    m.on_rejected(at);
                }
            }
        }
    }

    /// A queued primary displaced by priority-aware shedding at `now`.
    fn on_evicted(&mut self, leg: &Leg, now: u64) {
        self.push(SpanEvent::RootClose {
            id: leg.request.id,
            outcome: RootOutcome::Evicted,
            t: now,
        });
        if let Some(m) = &mut self.metrics {
            m.on_shed(now);
        }
    }

    fn on_timed_out(&mut self, id: u64, at: u64) {
        self.push(SpanEvent::RootClose { id, outcome: RootOutcome::TimedOut, t: at });
        if let Some(m) = &mut self.metrics {
            m.on_timed_out(at);
        }
    }

    fn on_failed(&mut self, id: u64, at: u64) {
        self.push(SpanEvent::RootClose { id, outcome: RootOutcome::Failed, t: at });
        if let Some(m) = &mut self.metrics {
            m.on_failed(at);
        }
    }

    fn on_retry(&mut self, ready_ns: u64) {
        if let Some(m) = &mut self.metrics {
            m.on_retry(ready_ns);
        }
    }

    fn on_hedge(&mut self, ready_ns: u64) {
        if let Some(m) = &mut self.metrics {
            m.on_hedge(ready_ns);
        }
    }

    /// A flight resolved successfully: close its root at `close_ns` (the
    /// last instant any of its legs was seen) and attribute the winning
    /// leg's latency to the request's priority tier.
    fn on_completed(
        &mut self,
        request: &Request,
        outcome: RootOutcome,
        close_ns: u64,
        done_ns: u64,
        breakdown: LatencyBreakdown,
    ) {
        self.push(SpanEvent::RootClose { id: request.id, outcome, t: close_ns });
        if let Some(m) = &mut self.metrics {
            m.on_completion(done_ns.saturating_sub(request.arrival_ns), done_ns);
        }
        self.tiers[request.priority.index()].add(breakdown);
    }

    /// One executed batch: the shard-track facts plus every member leg.
    fn on_batch(&mut self, shard: usize, facts: &BatchFacts, results: &[LegResult]) {
        if self.trace.is_some() {
            self.push(SpanEvent::Batch {
                shard,
                lane: facts.technique.index(),
                start_ns: facts.start_ns,
                reconfig_ns: facts.reconfig_ns,
                exec_start_ns: facts.exec_start_ns,
                busy_until_ns: facts.busy_until_ns,
                legs: results.len() as u32,
                crash: facts.crash,
            });
            for r in results {
                let (end_ns, outcome) = match r.fate {
                    LegFate::Done(d) => (d, LegOutcome::Done),
                    LegFate::Transient(d) => (d, LegOutcome::Transient),
                    LegFate::Crashed(at) => (at, LegOutcome::Crashed),
                };
                self.push(SpanEvent::Leg {
                    id: r.leg.request.id,
                    attempt: r.leg.attempt,
                    hedge: r.leg.hedge,
                    shard,
                    enqueued_ns: r.leg.enqueued_ns,
                    start_ns: r.start_ns,
                    end_ns,
                    outcome,
                });
            }
        }
        if let Some(m) = &mut self.metrics {
            m.add_busy(facts.start_ns, facts.busy_until_ns);
        }
    }

    fn on_quarantine(&mut self, shard: usize, from_ns: u64, until_ns: u64) {
        self.push(SpanEvent::Quarantine { shard, from_ns, until_ns });
        if let Some(m) = &mut self.metrics {
            m.on_quarantine(from_ns);
        }
    }

    /// Samples the admission lanes at `now`: opens/extends/closes the
    /// merged per-lane "queued" spans and records the total-depth gauge.
    fn note_queues(&mut self, depths: &[usize; Technique::ALL.len()], now: u64) {
        if self.trace.is_some() {
            for (lane, &depth) in depths.iter().enumerate() {
                let open = &mut self.lane_open[lane];
                if depth > 0 {
                    match open {
                        Some((_, peak)) => *peak = (*peak).max(depth as u64),
                        None => *open = Some((now, depth as u64)),
                    }
                } else if let Some((from_ns, peak_depth)) = open.take() {
                    self.push(SpanEvent::LaneBusy { lane, from_ns, until_ns: now, peak_depth });
                }
            }
        }
        if let Some(m) = &mut self.metrics {
            m.note_queue_depth(depths.iter().sum(), now);
        }
    }

    /// End of run: close any still-open lane spans and emit the chaos
    /// crash windows that fell inside the makespan.
    fn seal(&mut self, shards: &mut [Shard], makespan_ns: u64) {
        for lane in 0..self.lane_open.len() {
            if let Some((from_ns, peak_depth)) = self.lane_open[lane].take() {
                let until_ns = makespan_ns.max(from_ns);
                self.push(SpanEvent::LaneBusy { lane, from_ns, until_ns, peak_depth });
            }
        }
        if self.trace.is_some() {
            for (i, shard) in shards.iter_mut().enumerate() {
                if let Some(chaos) = &mut shard.chaos {
                    for (at_ns, until_ns) in chaos.windows_up_to(makespan_ns) {
                        self.push(SpanEvent::Crash { shard: i, at_ns, until_ns });
                    }
                }
            }
        }
    }

    /// Attaches the sealed observability section (and the raw span ring)
    /// to the assembled report.
    fn finish(self, report: &mut ServeReport) {
        let makespan_ns = report.makespan_ns;
        let shard_verdicts = report
            .shards
            .iter()
            .enumerate()
            .map(|(i, stats)| {
                let down_ns = report
                    .resilience
                    .as_ref()
                    .and_then(|r| r.shards.get(i))
                    .map_or(0, |s| s.down_ns);
                shard_verdict(stats, down_ns, makespan_ns)
            })
            .collect();
        let events_dropped = self.trace.as_ref().map_or(0, |t| t.events_dropped);
        if events_dropped > 0 {
            crate::trace::warn_events_dropped(events_dropped);
        }
        report.observability = Some(ObservabilityReport {
            events_dropped,
            tiers: self.tiers,
            shard_verdicts,
            metrics: self.metrics.map(|m| m.finish(makespan_ns)),
        });
        report.trace = self.trace;
    }
}

/// A retry or hedge leg waiting for its simulated release time.
#[derive(Clone, Copy, Debug)]
struct ReadyLeg {
    ready_ns: u64,
    seq: u64,
    leg: Leg,
}

impl PartialEq for ReadyLeg {
    fn eq(&self, other: &Self) -> bool {
        (self.ready_ns, self.seq) == (other.ready_ns, other.seq)
    }
}
impl Eq for ReadyLeg {}
impl PartialOrd for ReadyLeg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyLeg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready_ns, self.seq).cmp(&(other.ready_ns, other.seq))
    }
}

/// All request-lifecycle state of a resilient run: flights, the ready
/// heap for delayed legs, resolved completions and the resilience
/// tallies. Processed strictly sequentially (in wave order), so every
/// decision is independent of the worker count.
struct Lifecycle {
    defense: Defense,
    flights: BTreeMap<u64, Flight>,
    ready: BinaryHeap<Reverse<ReadyLeg>>,
    seq: u64,
    rep: ResilienceReport,
    completions: Vec<Completion>,
}

impl Lifecycle {
    fn new(defense: Defense, capacity: usize) -> Lifecycle {
        Lifecycle {
            defense,
            flights: BTreeMap::new(),
            ready: BinaryHeap::new(),
            seq: 0,
            rep: ResilienceReport::default(),
            completions: Vec::with_capacity(capacity),
        }
    }

    fn push_ready(&mut self, ready_ns: u64, mut leg: Leg) {
        // Every delayed leg re-enters the queue at its release time; the
        // stamp is observational only (trace/attribution), so setting it
        // here cannot perturb an unobserved run.
        leg.enqueued_ns = ready_ns;
        let seq = self.seq;
        self.seq = self.seq.saturating_add(1);
        self.ready.push(Reverse(ReadyLeg { ready_ns, seq, leg }));
    }

    /// Accounts one freshly offered request.
    fn on_offered(&mut self, request: &Request, outcome: AdmissionOutcome) {
        let tier = &mut self.rep.tiers[request.priority.index()];
        tier.offered = tier.offered.saturating_add(1);
        match outcome {
            AdmissionOutcome::Admitted => {
                self.flights.insert(
                    request.id,
                    Flight {
                        request: *request,
                        outstanding: 1,
                        attempts_used: 0,
                        hedged: false,
                        best: None,
                        last_fail_ns: 0,
                        last_seen_ns: 0,
                    },
                );
            }
            AdmissionOutcome::Shed => {
                self.rep.outcomes.shed = self.rep.outcomes.shed.saturating_add(1);
            }
            AdmissionOutcome::Rejected => {
                tier.rejected = tier.rejected.saturating_add(1);
                self.rep.outcomes.rejected = self.rep.outcomes.rejected.saturating_add(1);
            }
        }
    }

    /// Resolves a primary evicted by priority-aware shedding.
    fn on_evicted(&mut self, leg: &Leg) {
        let removed = self.flights.remove(&leg.request.id);
        debug_assert!(removed.is_some(), "evicted legs belong to live flights");
        self.rep.outcomes.shed = self.rep.outcomes.shed.saturating_add(1);
    }

    /// Pick-time filter: returns `true` when the leg must not be
    /// dispatched — a hedge whose primary already resolved (cancelled) or
    /// any leg past its deadline (timed out).
    fn drop_at_pick(&mut self, leg: &Leg, now: u64, obs: &mut Option<Observer>) -> bool {
        let id = leg.request.id;
        if leg.hedge {
            let f = self.flights.get(&id).expect("queued hedge belongs to a live flight");
            if f.best.is_some_and(|b| b.done_ns <= now) {
                // The primary answered before the hedge reached a shard:
                // cancel it, exactly as a real fleet would.
                self.rep.hedges_cancelled = self.rep.hedges_cancelled.saturating_add(1);
                self.finish_leg(id, obs);
                return true;
            }
        }
        if let Some(deadline) =
            self.defense.deadline_for(leg.request.priority, leg.request.arrival_ns)
        {
            if deadline < now {
                if leg.hedge {
                    self.rep.hedges_cancelled = self.rep.hedges_cancelled.saturating_add(1);
                    self.finish_leg(id, obs);
                } else {
                    let f = self.flights.remove(&id).expect("queued leg belongs to a live flight");
                    debug_assert!(f.outstanding == 1 && f.best.is_none());
                    self.rep.outcomes.timed_out = self.rep.outcomes.timed_out.saturating_add(1);
                    if let Some(o) = obs {
                        o.on_timed_out(id, now);
                    }
                }
                return true;
            }
        }
        false
    }

    /// Processes one executed leg: record its fate, possibly launch a
    /// hedge, and resolve the flight if no legs remain outstanding.
    fn on_leg_result(
        &mut self,
        result: &LegResult,
        facts: &BatchFacts,
        obs: &mut Option<Observer>,
    ) {
        let LegResult { leg, fate, service_ns, .. } = result;
        let fate = *fate;
        let dispatched_ns = facts.start_ns;
        let id = leg.request.id;
        let f = self.flights.get_mut(&id).expect("executed leg belongs to a live flight");
        match fate {
            LegFate::Done(done_ns) => {
                f.last_seen_ns = f.last_seen_ns.max(done_ns);
                if f.best.is_none_or(|b| done_ns < b.done_ns) {
                    f.best = Some(Best {
                        done_ns,
                        dispatched_ns,
                        hedge: leg.hedge,
                        retried: leg.attempt > 0,
                        breakdown: breakdown_of(leg, facts, done_ns),
                    });
                }
            }
            LegFate::Transient(at) => {
                self.rep.transient_faults = self.rep.transient_faults.saturating_add(1);
                f.last_fail_ns = f.last_fail_ns.max(at);
                f.last_seen_ns = f.last_seen_ns.max(at);
            }
            LegFate::Crashed(at) => {
                self.rep.crash_killed = self.rep.crash_killed.saturating_add(1);
                f.last_fail_ns = f.last_fail_ns.max(at);
                f.last_seen_ns = f.last_seen_ns.max(at);
            }
        }
        // Hedge trigger: a primary-generation leg whose *own* service
        // time blew past the hedge delay (a straggler or degraded shard)
        // or that failed outright spawns one duplicate, released
        // `hedge_after_ns` after the original dispatch. The request then
        // resolves to whichever leg finishes first. Tiers below
        // `recover_from` never hedge.
        let recoverable = leg.request.priority.index() >= self.defense.recover_from.index();
        if !leg.hedge && !f.hedged && recoverable {
            if let Some(after) = self.defense.hedge_after_ns {
                let slow_or_failed = match fate {
                    LegFate::Done(_) => *service_ns > after,
                    LegFate::Transient(_) | LegFate::Crashed(_) => true,
                };
                if slow_or_failed {
                    f.hedged = true;
                    f.outstanding = f.outstanding.saturating_add(1);
                    self.rep.hedges_launched = self.rep.hedges_launched.saturating_add(1);
                    let hedge = Leg {
                        request: leg.request,
                        attempt: leg.attempt,
                        hedge: true,
                        enqueued_ns: 0,
                    };
                    let ready_ns = dispatched_ns.saturating_add(after);
                    if let Some(o) = obs.as_mut() {
                        o.on_hedge(ready_ns);
                    }
                    self.push_ready(ready_ns, hedge);
                }
            }
        }
        self.finish_leg(id, obs);
    }

    /// One leg of flight `id` is gone (completed, failed, or cancelled);
    /// resolves the flight once nothing is outstanding.
    fn finish_leg(&mut self, id: u64, obs: &mut Option<Observer>) {
        let f = self.flights.get_mut(&id).expect("finished leg belongs to a live flight");
        f.outstanding = f.outstanding.saturating_sub(1);
        if f.outstanding > 0 {
            return;
        }
        let f = self.flights.remove(&id).expect("flight present");
        let tier = f.request.priority.index();
        if let Some(best) = f.best {
            let RequestKind::Phase(phase) = f.request.kind else {
                unreachable!("flights only exist for admitted, known-technique requests");
            };
            // A completion past its deadline still completed — the work
            // ran — it just misses its SLO.
            let met = self
                .defense
                .deadline_for(f.request.priority, f.request.arrival_ns)
                .is_none_or(|dl| best.done_ns <= dl);
            self.rep.tiers[tier].completed = self.rep.tiers[tier].completed.saturating_add(1);
            if met {
                self.rep.tiers[tier].slo_met = self.rep.tiers[tier].slo_met.saturating_add(1);
            }
            if best.hedge {
                self.rep.outcomes.hedge_won = self.rep.outcomes.hedge_won.saturating_add(1);
            } else if best.retried {
                self.rep.outcomes.retried_ok = self.rep.outcomes.retried_ok.saturating_add(1);
            } else {
                self.rep.outcomes.completed_clean =
                    self.rep.outcomes.completed_clean.saturating_add(1);
            }
            if let Some(o) = obs {
                let outcome = if best.hedge {
                    RootOutcome::HedgeWon
                } else if best.retried {
                    RootOutcome::RetriedOk
                } else {
                    RootOutcome::Completed
                };
                let close_ns = best.done_ns.max(f.last_seen_ns);
                o.on_completed(&f.request, outcome, close_ns, best.done_ns, best.breakdown);
            }
            self.completions.push(Completion {
                request: f.request,
                phase,
                dispatched_ns: best.dispatched_ns,
                completed_ns: best.done_ns,
            });
            return;
        }
        // Every leg failed: retry with exponential backoff while budget,
        // deadline and tier allow, otherwise the request is lost.
        let recoverable = f.request.priority.index() >= self.defense.recover_from.index();
        if recoverable && f.attempts_used < self.defense.max_retries {
            let shift = f.attempts_used.min(16);
            let backoff = self.defense.retry_backoff_ns.saturating_mul(1u64 << shift);
            let ready_ns = f.last_fail_ns.saturating_add(backoff);
            let worth_it = self
                .defense
                .deadline_for(f.request.priority, f.request.arrival_ns)
                .is_none_or(|dl| ready_ns <= dl);
            if worth_it {
                self.rep.retries_scheduled = self.rep.retries_scheduled.saturating_add(1);
                let retry = Leg {
                    request: f.request,
                    attempt: f.attempts_used + 1,
                    hedge: false,
                    enqueued_ns: 0,
                };
                self.flights.insert(
                    f.request.id,
                    Flight {
                        attempts_used: f.attempts_used + 1,
                        outstanding: 1,
                        hedged: false,
                        ..f
                    },
                );
                if let Some(o) = obs {
                    o.on_retry(ready_ns);
                }
                self.push_ready(ready_ns, retry);
                return;
            }
            // A retry that cannot start before the deadline is a timeout.
            self.rep.outcomes.timed_out = self.rep.outcomes.timed_out.saturating_add(1);
            if let Some(o) = obs {
                o.on_timed_out(f.request.id, f.last_seen_ns);
            }
            return;
        }
        self.rep.outcomes.failed = self.rep.outcomes.failed.saturating_add(1);
        if let Some(o) = obs {
            o.on_failed(f.request.id, f.last_seen_ns);
        }
    }
}

/// Runs the full open-loop stream through a fleet and reports what
/// happened. `requests` must be sorted by `arrival_ns` (the generator
/// produces them that way). Fault-free, defence-free — the baseline every
/// byte-identity check pins.
#[must_use]
pub fn run_fleet(
    config: &FleetConfig,
    cache: &CacheConfig,
    catalog: &ServingCatalog,
    requests: &[Request],
) -> ServeReport {
    run_fleet_resilient(config, cache, catalog, requests, &ChaosConfig::off(), &Defense::off())
}

/// [`run_fleet`] with chaos injection and a defence policy. With both
/// off this *is* the baseline (the lifecycle layer is never built and the
/// report carries no resilience section); otherwise every request is
/// tracked through retries, hedges, deadlines and quarantine to exactly
/// one resolution.
#[must_use]
pub fn run_fleet_resilient(
    config: &FleetConfig,
    cache: &CacheConfig,
    catalog: &ServingCatalog,
    requests: &[Request],
    chaos: &ChaosConfig,
    defense: &Defense,
) -> ServeReport {
    run_fleet_observed(config, cache, catalog, requests, chaos, defense, &ObserveConfig::off())
}

/// [`run_fleet_resilient`] with the observability layer: span tracing
/// and/or windowed metrics riding along. The observer is strictly
/// read-only over the simulation — whether it records or not, the loop
/// takes the same decisions, so an observed report's aggregates are
/// byte-identical to the unobserved run's (only the additive
/// `observability` section and the in-memory span ring differ).
#[must_use]
pub fn run_fleet_observed(
    config: &FleetConfig,
    cache: &CacheConfig,
    catalog: &ServingCatalog,
    requests: &[Request],
    chaos: &ChaosConfig,
    defense: &Defense,
    observe: &ObserveConfig,
) -> ServeReport {
    assert!(config.shards > 0, "a fleet needs at least one shard");
    debug_assert!(
        requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
        "request stream must be sorted by arrival"
    );

    let admission_config = AdmissionConfig {
        priority_aware: config.admission.priority_aware || defense.priority_shedding,
        ..config.admission
    };
    let resilient =
        !(chaos.is_off() && *defense == Defense::off() && !admission_config.priority_aware);

    let mut shards: Vec<Shard> = (0..config.shards)
        .map(|i| {
            let fate = if chaos.is_off() { None } else { Some(ShardChaos::new(chaos, i)) };
            Shard::new(cache, fate, config.trace_cache_bytes)
        })
        .collect();
    let mut admission = AdmissionQueue::new(admission_config);
    let mut baseline_completions: Vec<Completion> = Vec::with_capacity(requests.len());
    let mut lc = resilient.then(|| Lifecycle::new(*defense, requests.len()));
    let mut obs = (!observe.is_off()).then(|| Observer::new(observe, config.shards));

    let mut now = 0u64;
    let mut next_arrival = 0usize;
    loop {
        // 1. Ingest everything that has arrived by `now`, plus any retry
        //    or hedge legs whose release time has come.
        while next_arrival < requests.len() && requests[next_arrival].arrival_ns <= now {
            let request = requests[next_arrival];
            let outcome = admission.offer(request);
            if let Some(o) = &mut obs {
                o.on_offered(&request, outcome);
            }
            if let Some(lc) = &mut lc {
                lc.on_offered(&request, outcome);
                for evicted in admission.take_evicted() {
                    if let Some(o) = &mut obs {
                        o.on_evicted(&evicted, now);
                    }
                    lc.on_evicted(&evicted);
                }
            }
            next_arrival += 1;
        }
        if let Some(lc) = &mut lc {
            while lc.ready.peek().is_some_and(|Reverse(r)| r.ready_ns <= now) {
                let Reverse(r) = lc.ready.pop().expect("peeked");
                admission.offer_leg(r.leg);
            }
        }
        if let Some(o) = &mut obs {
            o.note_queues(&admission.lane_depths(), now);
        }

        // 2. Hand one batch to every idle, healthy shard (deterministic:
        //    shards in index order, batches in oldest-head-of-line
        //    order). Overdue and cancelled legs are filtered here.
        let mut wave: Vec<(usize, &mut Shard, Technique, Vec<Leg>)> = Vec::new();
        let mut queue_open = true;
        for (idx, shard) in shards.iter_mut().enumerate() {
            if !queue_open || shard.free_at_ns > now {
                continue;
            }
            if shard.quarantined_until_ns > now {
                continue;
            }
            if let Some(chaos) = &mut shard.chaos {
                if chaos.available_from(now) > now {
                    continue;
                }
            }
            let picked = loop {
                let Some((technique, batch)) = admission.pick_batch(config.max_batch) else {
                    break None;
                };
                let Some(lc) = &mut lc else {
                    break Some((technique, batch));
                };
                let live: Vec<Leg> =
                    batch.into_iter().filter(|leg| !lc.drop_at_pick(leg, now, &mut obs)).collect();
                if !live.is_empty() {
                    break Some((technique, live));
                }
            };
            match picked {
                Some((technique, batch)) => wave.push((idx, shard, technique, batch)),
                None => queue_open = false,
            }
        }

        // 3. Execute the wave (possibly empty). Each job owns a disjoint
        //    `&mut Shard`, and run_indexed returns results in wave order,
        //    so the outcome is identical whether REPRO_THREADS is 1 or 64.
        let start = now;
        let jobs: Vec<_> = wave
            .into_iter()
            .map(|(idx, shard, technique, batch)| {
                move || {
                    let (facts, results) = shard.run_batch(technique, &batch, catalog, start);
                    (idx, facts, results)
                }
            })
            .collect();
        for (idx, facts, batch_results) in pool::run_indexed(jobs) {
            if let Some(o) = &mut obs {
                o.on_batch(idx, &facts, &batch_results);
            }
            match &mut lc {
                None => {
                    for r in batch_results {
                        let LegFate::Done(completed_ns) = r.fate else {
                            unreachable!("faults require chaos, which is off on this path");
                        };
                        if let Some(o) = &mut obs {
                            o.on_completed(
                                &r.leg.request,
                                RootOutcome::Completed,
                                completed_ns,
                                completed_ns,
                                breakdown_of(&r.leg, &facts, completed_ns),
                            );
                        }
                        baseline_completions.push(Completion {
                            request: r.leg.request,
                            phase: r.phase,
                            dispatched_ns: start,
                            completed_ns,
                        });
                    }
                }
                Some(lc) => {
                    for r in batch_results {
                        lc.on_leg_result(&r, &facts, &mut obs);
                    }
                }
            }
        }

        // 3b. Health tracking: a shard that just crossed the
        //     consecutive-failure threshold is pulled from rotation until
        //     its cooldown ends (sequential, in shard order).
        if resilient && defense.quarantine_after > 0 {
            for (idx, shard) in shards.iter_mut().enumerate() {
                if shard.fail_streak >= defense.quarantine_after {
                    let from = now.max(shard.free_at_ns);
                    shard.quarantined_until_ns =
                        from.saturating_add(defense.quarantine_cooldown_ns);
                    shard.quarantines = shard.quarantines.saturating_add(1);
                    shard.quarantine_down_ns =
                        shard.quarantine_down_ns.saturating_add(defense.quarantine_cooldown_ns);
                    shard.fail_streak = 0;
                    if let Some(o) = &mut obs {
                        o.on_quarantine(idx, from, shard.quarantined_until_ns);
                    }
                }
            }
        }
        if let Some(o) = &mut obs {
            o.note_queues(&admission.lane_depths(), now);
        }

        // 4. Advance to the next event: arrival, delayed-leg release,
        //    shard completion, crash repair, or quarantine expiry. The
        //    dispatch loop drained either the queue or the eligible
        //    shards, so no work is runnable before that instant.
        let mut next_event: Option<u64> = requests.get(next_arrival).map(|r| r.arrival_ns);
        let fold = |next_event: &mut Option<u64>, t: u64| {
            *next_event = Some(next_event.map_or(t, |n| n.min(t)));
        };
        if let Some(lc) = &lc {
            if let Some(Reverse(r)) = lc.ready.peek() {
                fold(&mut next_event, r.ready_ns);
            }
        }
        for shard in &mut shards {
            if shard.free_at_ns > now {
                fold(&mut next_event, shard.free_at_ns);
            }
            if shard.quarantined_until_ns > now {
                fold(&mut next_event, shard.quarantined_until_ns);
            }
            if let Some(chaos) = &mut shard.chaos {
                let up_at = chaos.available_from(now);
                if up_at > now {
                    fold(&mut next_event, up_at);
                }
            }
        }
        match next_event {
            Some(t) => now = now.max(t),
            // No pending arrivals, no delayed legs, and no busy shards:
            // if the queue were non-empty, step 2 would have dispatched
            // it. All drained.
            None => break,
        }
    }

    let (completions, resilience) = match lc {
        None => (baseline_completions, None),
        Some(lc) => {
            debug_assert!(lc.flights.is_empty(), "every flight must resolve");
            let makespan_ns = lc.completions.iter().map(|c| c.completed_ns).max().unwrap_or(0);
            let mut rep = lc.rep;
            rep.shards = shards
                .iter_mut()
                .map(|s| {
                    let (crashes, crash_down_ns) = match &mut s.chaos {
                        Some(c) => c.windows_within(makespan_ns),
                        None => (0, 0),
                    };
                    ShardResilience {
                        crashes,
                        quarantines: s.quarantines,
                        down_ns: crash_down_ns.saturating_add(s.quarantine_down_ns),
                        availability_permille: 0, // filled in by assemble
                        slowdown_permille: s.chaos.as_ref().map_or(1000, |c| c.slowdown_permille),
                        lanes_left: s.chaos.as_ref().map_or_else(
                            || pudiannao_accel::ArchConfig::paper_default().lanes,
                            |c| c.lanes_left,
                        ),
                    }
                })
                .collect();
            (lc.completions, Some(rep))
        }
    };

    if let Some(o) = &mut obs {
        let makespan_ns = completions.iter().map(|c| c.completed_ns).max().unwrap_or(0);
        o.seal(&mut shards, makespan_ns);
    }

    let mut report = ServeReport::assemble(
        config,
        admission.counters(),
        admission.shed_by_technique(),
        &completions,
        &shards
            .iter()
            .map(|s| crate::report::ShardStats {
                batches: s.batches,
                requests: s.requests,
                reconfigs: s.reconfigs,
                busy_ns: s.busy_ns,
                ops: s.ops,
                offchip_bytes: s.offchip_bytes,
                utilization_permille: 0, // filled in by assemble (needs makespan)
            })
            .collect::<Vec<_>>(),
        resilience,
    );
    if let Some(o) = obs {
        o.finish(&mut report);
    }
    // In-memory only, like the trace handle: the summed per-shard
    // template-cache counters never reach the report JSON, so pinned
    // reports stay byte-identical whatever the cache budget.
    report.trace_cache = shards
        .iter()
        .filter_map(|s| s.trace_cache.as_ref())
        .map(TraceCache::stats)
        .reduce(TraceCacheStats::merged);
    report
}

/// Convenience entry point: generate the stream, build the default
/// catalog, run the fleet.
#[must_use]
pub fn serve(config: &FleetConfig, gen_config: &crate::gen::GeneratorConfig) -> ServeReport {
    let catalog = ServingCatalog::paper_default();
    let requests = crate::gen::generate(gen_config);
    run_fleet(config, &CacheConfig::paper_default(), &catalog, &requests)
}

/// [`serve`] under a chaos plan and defence policy.
#[must_use]
pub fn serve_resilient(
    config: &FleetConfig,
    gen_config: &crate::gen::GeneratorConfig,
    chaos: &ChaosConfig,
    defense: &Defense,
) -> ServeReport {
    let catalog = ServingCatalog::paper_default();
    let requests = crate::gen::generate(gen_config);
    run_fleet_resilient(config, &CacheConfig::paper_default(), &catalog, &requests, chaos, defense)
}

/// [`serve_resilient`] with the observability layer riding along.
#[must_use]
pub fn serve_observed(
    config: &FleetConfig,
    gen_config: &crate::gen::GeneratorConfig,
    chaos: &ChaosConfig,
    defense: &Defense,
    observe: &ObserveConfig,
) -> ServeReport {
    let catalog = ServingCatalog::paper_default();
    let requests = crate::gen::generate(gen_config);
    run_fleet_observed(
        config,
        &CacheConfig::paper_default(),
        &catalog,
        &requests,
        chaos,
        defense,
        observe,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratorConfig;

    #[test]
    fn conservation_holds_on_a_small_stream() {
        let gen = GeneratorConfig { requests: 500, ..GeneratorConfig::smoke(21) };
        let report = serve(&FleetConfig::with_shards(2), &gen);
        assert_eq!(report.counters.offered, 500);
        assert_eq!(
            report.counters.admitted + report.counters.shed + report.counters.rejected,
            report.counters.offered
        );
        assert_eq!(report.completed, report.counters.admitted);
        assert!(report.latencies_sorted_ns.iter().all(|&l| l > 0));
        assert!(report.resilience.is_none(), "baseline runs carry no resilience section");
    }

    #[test]
    fn single_shard_serialises_everything() {
        let gen = GeneratorConfig {
            requests: 64,
            unknown_per_mille: 0,
            burst_every: 0,
            ..GeneratorConfig::smoke(9)
        };
        let report = serve(&FleetConfig::with_shards(1), &gen);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].requests, report.completed);
        // One shard must be at least as slow end-to-end as four.
        let report4 = serve(&FleetConfig::with_shards(4), &gen);
        assert!(report.makespan_ns >= report4.makespan_ns);
    }

    #[test]
    fn completions_never_precede_arrivals() {
        let gen = GeneratorConfig { requests: 300, ..GeneratorConfig::smoke(33) };
        let catalog = ServingCatalog::paper_default();
        let requests = crate::gen::generate(&gen);
        let report = run_fleet(
            &FleetConfig::paper_default(),
            &CacheConfig::paper_default(),
            &catalog,
            &requests,
        );
        assert!(report.completed > 0);
        // Latency = completion - arrival is computed in assemble and must
        // never underflow; reaching here without a panic proves it, and
        // the minimum observed latency must cover setup + one kernel.
        assert!(report.latencies_sorted_ns[0] >= BATCH_SETUP_NS);
    }

    #[test]
    fn resilient_run_conserves_requests() {
        let gen = GeneratorConfig { requests: 1_500, ..GeneratorConfig::smoke(5) };
        let chaos = ChaosConfig::intensity(17, 1);
        let report =
            serve_resilient(&FleetConfig::paper_default(), &gen, &chaos, &Defense::full(140_000));
        let res = report.resilience.expect("chaos runs carry the resilience section");
        assert_eq!(res.outcomes.total(), report.counters.offered, "{:?}", res.outcomes);
        assert_eq!(res.outcomes.completed_total(), report.completed);
        let tier_offered: u64 = res.tiers.iter().map(|t| t.offered).sum();
        assert_eq!(tier_offered, report.counters.offered);
    }

    #[test]
    fn transient_faults_without_retries_become_failures() {
        let gen =
            GeneratorConfig { requests: 1_000, unknown_per_mille: 0, ..GeneratorConfig::smoke(13) };
        let chaos = ChaosConfig {
            transient_per_mille: 120,
            crash_mtbf_ns: 0,
            straggler_per_mille: 0,
            degraded_per_mille: 0,
            ..ChaosConfig::intensity(29, 1)
        };
        let undefended =
            serve_resilient(&FleetConfig::paper_default(), &gen, &chaos, &Defense::none(140_000));
        let res = undefended.resilience.expect("resilience section");
        assert!(res.outcomes.failed > 0, "{:?}", res.outcomes);
        assert_eq!(res.outcomes.total(), undefended.counters.offered);
        // Retries recover most of them.
        let defended = serve_resilient(
            &FleetConfig::paper_default(),
            &gen,
            &chaos,
            &Defense::retries(140_000),
        );
        let dres = defended.resilience.expect("resilience section");
        assert!(dres.outcomes.retried_ok > 0);
        assert!(dres.outcomes.failed < res.outcomes.failed, "{dres:?}");
    }

    #[test]
    fn observed_run_leaves_aggregates_untouched() {
        let gen = GeneratorConfig { requests: 800, ..GeneratorConfig::smoke(7) };
        let chaos = ChaosConfig::intensity(11, 1);
        let defense = Defense::full(140_000);
        let plain = serve_resilient(&FleetConfig::paper_default(), &gen, &chaos, &defense);
        let observed = serve_observed(
            &FleetConfig::paper_default(),
            &gen,
            &chaos,
            &defense,
            &ObserveConfig::full(800),
        );
        // Stripping the additive section must recover the unobserved
        // report byte-for-byte: observation cannot perturb the run.
        let mut stripped = observed.clone();
        stripped.observability = None;
        stripped.trace = None;
        assert_eq!(plain.to_json().to_string_pretty(), stripped.to_json().to_string_pretty());
        let o = observed.observability.as_ref().expect("observed run");
        assert_eq!(o.events_dropped, 0, "sized_for(800) must hold the whole stream");
        // Attribution is exact: the per-tier five-way splits sum to the
        // total of every completion's end-to-end latency.
        assert_eq!(o.tiers.iter().map(|t| t.completed).sum::<u64>(), observed.completed);
        let attributed: u64 = o
            .tiers
            .iter()
            .map(|t| t.backoff_ns + t.queue_ns + t.reconfig_ns + t.setup_ns + t.service_ns)
            .sum();
        let exact: u64 = observed.latencies_sorted_ns.iter().sum();
        assert_eq!(attributed, exact);
        assert_eq!(o.shard_verdicts.len(), observed.shards.len());
        // The histogram p99 never understates the exact one.
        let m = o.metrics.as_ref().expect("metrics on");
        assert!(m.overall_p99_ns >= observed.p99_ns);
        assert!(!m.windows.is_empty());
    }

    #[test]
    fn baseline_observed_timeline_validates() {
        let gen = GeneratorConfig { requests: 400, ..GeneratorConfig::smoke(3) };
        let report = serve_observed(
            &FleetConfig::paper_default(),
            &gen,
            &ChaosConfig::off(),
            &Defense::off(),
            &ObserveConfig { trace: Some(TraceConfig::sized_for(400)), metrics: None },
        );
        assert!(report.resilience.is_none(), "observation must not force the resilient path");
        let timeline = crate::trace::fleet_timeline(&report).expect("trace was on");
        let check =
            pudiannao_accel::profile::validate_timeline(&timeline).expect("well-formed timeline");
        assert!(check.spans > 0);
        // 4 shard tracks always carry spans; lanes only when a queue
        // actually backed up, so only bound the track count.
        assert!(check.tracks >= 4, "got {} tracks", check.tracks);
        let m = report.observability.as_ref().expect("observability section");
        assert!(m.metrics.is_none(), "metrics stay off when only tracing");
    }

    #[test]
    fn crashed_shards_idle_until_repair_and_kill_inflight_legs() {
        let gen =
            GeneratorConfig { requests: 2_000, unknown_per_mille: 0, ..GeneratorConfig::smoke(41) };
        let chaos = ChaosConfig {
            crash_mtbf_ns: 200_000,
            crash_mttr_ns: 80_000,
            transient_per_mille: 0,
            straggler_per_mille: 0,
            degraded_per_mille: 0,
            ..ChaosConfig::intensity(3, 2)
        };
        let report = serve_resilient(
            &FleetConfig::paper_default(),
            &gen,
            &chaos,
            &Defense::retries(140_000),
        );
        let res = report.resilience.expect("resilience section");
        assert!(res.crash_killed > 0, "crashes this frequent must catch batches");
        assert!(res.shards.iter().any(|s| s.crashes > 0));
        assert!(res.shards.iter().all(|s| s.availability_permille <= 1000));
        assert_eq!(res.outcomes.total(), report.counters.offered);
    }
}
