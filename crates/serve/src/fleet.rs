//! The fleet: a pool of simulated PuDianNao devices ("shards") draining
//! the admission queue, driven as a discrete-event simulation.
//!
//! Each shard owns one reusable `SimdEngine` (the cache-simulating SIMD
//! datapath from memsim) that is **reset, never rebuilt** between batches
//! — the PR-5 profiling result (~87ns reset vs ~252ns rebuild) becomes the
//! serving cost model: every batch pays the reset as setup, and switching
//! technique families additionally pays a reconfiguration charge for
//! re-arming the functional units (the paper's polyvalent datapath is
//! time-shared across the seven techniques). Batching by technique exists
//! precisely to amortise that reconfiguration.
//!
//! The event loop is single-threaded and deterministic: ingest arrivals,
//! dispatch one batch to every idle shard, execute the dispatched wave —
//! the only parallel part, via [`pool::run_indexed`], whose results come
//! back in wave order regardless of worker count — then advance simulated
//! time to the next arrival or shard-completion event. One engine cycle is
//! one simulated nanosecond (1 GHz device clock, as in the paper's
//! evaluation).

use pudiannao_memsim::{batch, Access, BatchSink, CacheConfig, SimdEngine, Technique};

use crate::admission::{AdmissionConfig, AdmissionQueue};
use crate::catalog::ServingCatalog;
use crate::pool;
use crate::report::{Completion, ServeReport};
use crate::request::{Request, RequestKind};

/// Cost, in simulated ns, of resetting a shard's engine for a new batch
/// (measured reuse-path cost from the PR-5 profiling pass).
pub const BATCH_SETUP_NS: u64 = 87;

/// Additional cost, in simulated ns, of re-arming the datapath when a
/// shard switches technique families between batches (measured
/// full-rebuild cost from the same profiling pass).
pub const RECONFIG_NS: u64 = 252;

/// Fleet-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub shards: usize,
    /// Max requests per dispatched batch.
    pub max_batch: usize,
    /// Admission-queue bounds.
    pub admission: AdmissionConfig,
}

impl FleetConfig {
    /// The 4-shard fleet `serve_bench` runs by default.
    #[must_use]
    pub fn paper_default() -> Self {
        FleetConfig { shards: 4, max_batch: 16, admission: AdmissionConfig::paper_default() }
    }

    /// Same knobs with a different shard count (for the scaling sweep).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        FleetConfig { shards, ..FleetConfig::paper_default() }
    }
}

/// One simulated device: a reusable engine (plus its batching scratch
/// buffer) and utilisation counters.
struct Shard {
    engine: SimdEngine,
    /// Scratch for the batched trace path, reused across requests.
    buf: Vec<Access>,
    last_technique: Option<Technique>,
    free_at_ns: u64,
    batches: u64,
    requests: u64,
    reconfigs: u64,
    busy_ns: u64,
    ops: u64,
    offchip_bytes: u64,
}

impl Shard {
    fn new(cache: &CacheConfig) -> Shard {
        Shard {
            engine: SimdEngine::new(cache.clone()).expect("paper cache config is valid"),
            buf: Vec::with_capacity(batch::FLUSH_ACCESSES + 8),
            last_technique: None,
            free_at_ns: 0,
            batches: 0,
            requests: 0,
            reconfigs: 0,
            busy_ns: 0,
            ops: 0,
            offchip_bytes: 0,
        }
    }

    /// Executes one technique-homogeneous batch starting at `start_ns`;
    /// returns per-request completions. The engine is reset once per
    /// batch, so requests in a batch share cache state — the locality win
    /// batching buys on top of amortised reconfiguration.
    fn run_batch(
        &mut self,
        technique: Technique,
        batch: &[Request],
        catalog: &ServingCatalog,
        start_ns: u64,
    ) -> Vec<Completion> {
        let mut t = start_ns;
        if self.last_technique != Some(technique) {
            t += RECONFIG_NS;
            if self.last_technique.is_some() {
                self.reconfigs += 1;
            }
            self.last_technique = Some(technique);
        }
        t += BATCH_SETUP_NS;
        self.engine.reset();
        let mut completions = Vec::with_capacity(batch.len());
        for request in batch {
            let RequestKind::Phase(phase) = request.kind else {
                unreachable!("admission rejects unknown techniques before dispatch");
            };
            // Batched execution: the request's ops accumulate in the
            // scratch buffer and stream through the cache in block
            // passes — counter-identical to tracing straight into the
            // engine, which is why the completion timestamps (read off
            // the cumulative cycle counter after the flush) don't move.
            let mut sink = BatchSink::new(&mut self.engine, &mut self.buf);
            catalog.get(phase, request.tier).trace(&mut sink);
            sink.finish();
            let done_ns = t + self.engine.report().cycles;
            completions.push(Completion {
                request: *request,
                phase,
                dispatched_ns: start_ns,
                completed_ns: done_ns,
            });
        }
        let stats = self.engine.report();
        let end_ns = t + stats.cycles;
        self.batches += 1;
        self.requests += batch.len() as u64;
        self.busy_ns += end_ns - start_ns;
        self.ops += stats.ops;
        self.offchip_bytes += stats.offchip_bytes;
        self.free_at_ns = end_ns;
        completions
    }
}

/// Runs the full open-loop stream through a fleet and reports what
/// happened. `requests` must be sorted by `arrival_ns` (the generator
/// produces them that way).
#[must_use]
pub fn run_fleet(
    config: &FleetConfig,
    cache: &CacheConfig,
    catalog: &ServingCatalog,
    requests: &[Request],
) -> ServeReport {
    assert!(config.shards > 0, "a fleet needs at least one shard");
    debug_assert!(
        requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
        "request stream must be sorted by arrival"
    );

    let mut shards: Vec<Shard> = (0..config.shards).map(|_| Shard::new(cache)).collect();
    let mut admission = AdmissionQueue::new(config.admission);
    let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());

    let mut now = 0u64;
    let mut next_arrival = 0usize;
    loop {
        // 1. Ingest everything that has arrived by `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival_ns <= now {
            let request = requests[next_arrival];
            // Shed/rejected requests are dropped here; the admission
            // counters carry everything the report needs about them.
            let _ = admission.offer(request);
            next_arrival += 1;
        }

        // 2. Hand one batch to every idle shard (deterministic: shards in
        //    index order, batches in oldest-head-of-line order).
        let mut wave: Vec<(&mut Shard, Technique, Vec<Request>)> = Vec::new();
        for shard in &mut shards {
            if shard.free_at_ns > now {
                continue;
            }
            let Some((technique, batch)) = admission.pick_batch(config.max_batch) else {
                break;
            };
            wave.push((shard, technique, batch));
        }

        // 3. Execute the wave (possibly empty). Each job owns a disjoint
        //    `&mut Shard`, and run_indexed returns results in wave order,
        //    so the report is identical whether REPRO_THREADS is 1 or 64.
        let start = now;
        let jobs: Vec<_> = wave
            .into_iter()
            .map(|(shard, technique, batch)| {
                move || shard.run_batch(technique, &batch, catalog, start)
            })
            .collect();
        for batch_completions in pool::run_indexed(jobs) {
            completions.extend(batch_completions);
        }

        // 4. Advance to the next event (arrival or shard completion); the
        //    dispatch loop above drained either the queue or the idle
        //    shards, so no work is runnable before that instant.
        let next_event = {
            let arrival = requests.get(next_arrival).map(|r| r.arrival_ns);
            let completion = shards.iter().map(|s| s.free_at_ns).filter(|&t| t > now).min();
            match (arrival, completion) {
                (Some(a), Some(c)) => Some(a.min(c)),
                (Some(a), None) => Some(a),
                (None, Some(c)) => Some(c),
                (None, None) => None,
            }
        };
        match next_event {
            Some(t) => now = now.max(t),
            // No pending arrivals and no busy shards: if the queue were
            // non-empty, step 2 would have dispatched it. All drained.
            None => break,
        }
    }

    ServeReport::assemble(
        config,
        admission.counters(),
        admission.shed_by_technique(),
        &completions,
        &shards
            .iter()
            .map(|s| crate::report::ShardStats {
                batches: s.batches,
                requests: s.requests,
                reconfigs: s.reconfigs,
                busy_ns: s.busy_ns,
                ops: s.ops,
                offchip_bytes: s.offchip_bytes,
                utilization_permille: 0, // filled in by assemble (needs makespan)
            })
            .collect::<Vec<_>>(),
    )
}

/// Convenience entry point: generate the stream, build the default
/// catalog, run the fleet.
#[must_use]
pub fn serve(config: &FleetConfig, gen_config: &crate::gen::GeneratorConfig) -> ServeReport {
    let catalog = ServingCatalog::paper_default();
    let requests = crate::gen::generate(gen_config);
    run_fleet(config, &CacheConfig::paper_default(), &catalog, &requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratorConfig;

    #[test]
    fn conservation_holds_on_a_small_stream() {
        let gen = GeneratorConfig { requests: 500, ..GeneratorConfig::smoke(21) };
        let report = serve(&FleetConfig::with_shards(2), &gen);
        assert_eq!(report.counters.offered, 500);
        assert_eq!(
            report.counters.admitted + report.counters.shed + report.counters.rejected,
            report.counters.offered
        );
        assert_eq!(report.completed, report.counters.admitted);
        assert!(report.latencies_sorted_ns.iter().all(|&l| l > 0));
    }

    #[test]
    fn single_shard_serialises_everything() {
        let gen = GeneratorConfig {
            requests: 64,
            unknown_per_mille: 0,
            burst_every: 0,
            ..GeneratorConfig::smoke(9)
        };
        let report = serve(&FleetConfig::with_shards(1), &gen);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].requests, report.completed);
        // One shard must be at least as slow end-to-end as four.
        let report4 = serve(&FleetConfig::with_shards(4), &gen);
        assert!(report.makespan_ns >= report4.makespan_ns);
    }

    #[test]
    fn completions_never_precede_arrivals() {
        let gen = GeneratorConfig { requests: 300, ..GeneratorConfig::smoke(33) };
        let catalog = ServingCatalog::paper_default();
        let requests = crate::gen::generate(&gen);
        let report = run_fleet(
            &FleetConfig::paper_default(),
            &CacheConfig::paper_default(),
            &catalog,
            &requests,
        );
        assert!(report.completed > 0);
        // Latency = completion - arrival is computed in assemble and must
        // never underflow; reaching here without a panic proves it, and
        // the minimum observed latency must cover setup + one kernel.
        assert!(report.latencies_sorted_ns[0] >= BATCH_SETUP_NS);
    }
}
