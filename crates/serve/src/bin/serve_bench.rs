//! Serving-fleet benchmark: drives an open-loop request stream through a
//! pool of simulated PuDianNao devices and writes `serve_report.json`.
//!
//! ```text
//! serve_bench [--smoke] [--out PATH] [--trace] [--trace-out PATH] [--no-trace-cache]
//! ```
//!
//! Default mode runs the heavy 100k-request stream on a 4-shard fleet
//! plus the 1/2/4/8-shard scaling sweep; `--smoke` runs the scaled-down
//! CI stream (4k requests, 2 shards, no sweep). Lines tagged `[serve]`
//! are pinned by `scripts/check.sh --serve`; the JSON file is compared
//! byte-for-byte across `REPRO_THREADS` settings.
//!
//! `--trace` re-runs the same stream with the observability layer on
//! (spans + windowed metrics) and writes the fleet timeline (Chrome
//! trace JSON, openable in `chrome://tracing` or Perfetto) to
//! `--trace-out` (default `serve_timeline.json`). The report run stays
//! untraced, so `serve_report.json` is byte-identical either way.
//!
//! `--no-trace-cache` disables the per-shard trace-template cache
//! (`FleetConfig::trace_cache_bytes = 0`) for wall-clock A/B runs. The
//! cache only moves wall-clock and memory, so the report file and every
//! pinned `[serve]` line except `trace_cache` itself stay byte-identical
//! with it on or off; the wall-clock itself is printed to stderr so
//! stdout stays reproducible.

use pudiannao_accel::json::Value;
use pudiannao_serve::{
    export_timeline, scaling_sweep, serve, serve_observed, sweep, ChaosConfig, Defense,
    FleetConfig, GeneratorConfig, ObserveConfig, ServeReport,
};

/// Seed for the default request stream (arbitrary but pinned: the smoke
/// counts in `scripts/check.sh` and the determinism test depend on it).
const STREAM_SEED: u64 = 0xd1a0_2015;

fn print_summary(mode: &str, report: &ServeReport) {
    println!("[serve] mode {mode}");
    println!("[serve] shards {}", report.shards_configured);
    println!("[serve] offered {}", report.counters.offered);
    println!("[serve] admitted {}", report.counters.admitted);
    println!("[serve] shed {}", report.counters.shed);
    println!("[serve] rejected {}", report.counters.rejected);
    println!("[serve] completed {}", report.completed);
    println!("[serve] shed_permille {}", report.shed_permille);
    println!(
        "[serve] latency_ns p50 {} p99 {} p999 {} max {}",
        report.p50_ns, report.p99_ns, report.p999_ns, report.max_ns
    );
    println!("[serve] throughput_rps {:.1}", report.throughput_rps);
    // Deterministic (slot decisions depend only on the trace shapes and
    // the byte budget), so check.sh pins this line like the counters.
    match &report.trace_cache {
        Some(tc) => println!(
            "[serve] trace_cache hits {} misses {} hit_permille {} resident_kb {} ready {} \
             too_big {}",
            tc.hits,
            tc.misses,
            tc.hit_permille(),
            tc.resident_bytes / 1024,
            tc.ready_slots,
            tc.too_big_slots
        ),
        None => println!("[serve] trace_cache off"),
    }
    for (i, s) in report.shards.iter().enumerate() {
        println!(
            "[serve] shard {i} requests {} batches {} reconfigs {} utilization_permille {}",
            s.requests, s.batches, s.reconfigs, s.utilization_permille
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut trace = false;
    let mut trace_cache = true;
    let mut out = String::from("serve_report.json");
    let mut trace_out = String::from("serve_timeline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace" => trace = true,
            "--no-trace-cache" => trace_cache = false,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--trace-out" => {
                trace_out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (usage: serve_bench [--smoke] [--out PATH] \
                     [--trace] [--trace-out PATH] [--no-trace-cache])"
                );
                std::process::exit(2);
            }
        }
    }

    let (gen, mut fleet, mode) = if smoke {
        (GeneratorConfig::smoke(STREAM_SEED), FleetConfig::with_shards(2), "smoke")
    } else {
        (GeneratorConfig::heavy(STREAM_SEED), FleetConfig::paper_default(), "heavy")
    };
    if !trace_cache {
        fleet.trace_cache_bytes = 0;
    }

    let wall_start = std::time::Instant::now();
    let report = serve(&fleet, &gen);
    let wall = wall_start.elapsed();
    print_summary(mode, &report);
    // Wall-clock is the one number that legitimately varies run to run,
    // so it goes to stderr: the determinism test compares stdout
    // verbatim across REPRO_THREADS settings.
    eprintln!("[serve] wall_ms {:.1} (unpinned)", wall.as_secs_f64() * 1e3);

    let mut doc = Value::object().with("mode", mode).with("report", report.to_json());
    if !smoke {
        let points = scaling_sweep(&sweep::gate_generator());
        let mut arr = Value::array(Vec::new());
        for p in &points {
            println!(
                "[serve] sweep shards {} completed {} throughput_rps {:.1} p99_ns {} \
                 util_permille {}",
                p.shards, p.completed, p.throughput_rps, p.p99_ns, p.util_permille
            );
            arr.push(p.to_json());
        }
        doc.set("scaling_sweep", arr);
    }

    let body = doc.to_string_pretty();
    if let Err(e) = std::fs::write(&out, body + "\n") {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("[serve] wrote {out}");

    // `--trace`: one extra run of the same stream with spans and
    // windowed metrics on (chaos off, so the timeline shows the clean
    // baseline). The report run above already happened untraced.
    if trace {
        let traced = serve_observed(
            &fleet,
            &gen,
            &ChaosConfig::off(),
            &Defense::off(),
            &ObserveConfig::full(gen.requests),
        );
        let check = export_timeline(&traced, &trace_out).unwrap_or_else(|e| {
            eprintln!("error: exporting timeline: {e}");
            std::process::exit(1);
        });
        let obs = traced.observability.as_ref().expect("observed run carries observability");
        let metrics = obs.metrics.as_ref().expect("observed run carries metrics");
        println!("[trace] cell {mode} baseline");
        println!(
            "[trace] spans {} instants {} tracks {}",
            check.spans, check.instants, check.tracks
        );
        println!("[trace] events_dropped {}", obs.events_dropped);
        println!(
            "[trace] windows {} windowed_p99_max_ns {}",
            metrics.windows.len(),
            metrics.windowed_p99_max_ns
        );
        println!("[trace] wrote {trace_out}");
    }
}
