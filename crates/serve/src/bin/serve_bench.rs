//! Serving-fleet benchmark: drives an open-loop request stream through a
//! pool of simulated PuDianNao devices and writes `serve_report.json`.
//!
//! ```text
//! serve_bench [--smoke] [--out PATH]
//! ```
//!
//! Default mode runs the heavy 100k-request stream on a 4-shard fleet
//! plus the 1/2/4/8-shard scaling sweep; `--smoke` runs the scaled-down
//! CI stream (4k requests, 2 shards, no sweep). Lines tagged `[serve]`
//! are pinned by `scripts/check.sh --serve`; the JSON file is compared
//! byte-for-byte across `REPRO_THREADS` settings.

use pudiannao_accel::json::Value;
use pudiannao_serve::{scaling_sweep, serve, sweep, FleetConfig, GeneratorConfig, ServeReport};

/// Seed for the default request stream (arbitrary but pinned: the smoke
/// counts in `scripts/check.sh` and the determinism test depend on it).
const STREAM_SEED: u64 = 0xd1a0_2015;

fn print_summary(mode: &str, report: &ServeReport) {
    println!("[serve] mode {mode}");
    println!("[serve] shards {}", report.shards_configured);
    println!("[serve] offered {}", report.counters.offered);
    println!("[serve] admitted {}", report.counters.admitted);
    println!("[serve] shed {}", report.counters.shed);
    println!("[serve] rejected {}", report.counters.rejected);
    println!("[serve] completed {}", report.completed);
    println!("[serve] shed_permille {}", report.shed_permille);
    println!(
        "[serve] latency_ns p50 {} p99 {} p999 {} max {}",
        report.p50_ns, report.p99_ns, report.p999_ns, report.max_ns
    );
    println!("[serve] throughput_rps {:.1}", report.throughput_rps);
    for (i, s) in report.shards.iter().enumerate() {
        println!(
            "[serve] shard {i} requests {} batches {} reconfigs {} utilization_permille {}",
            s.requests, s.batches, s.reconfigs, s.utilization_permille
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("serve_report.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (usage: serve_bench [--smoke] [--out PATH])"
                );
                std::process::exit(2);
            }
        }
    }

    let (gen, fleet, mode) = if smoke {
        (GeneratorConfig::smoke(STREAM_SEED), FleetConfig::with_shards(2), "smoke")
    } else {
        (GeneratorConfig::heavy(STREAM_SEED), FleetConfig::paper_default(), "heavy")
    };

    let report = serve(&fleet, &gen);
    print_summary(mode, &report);

    let mut doc = Value::object().with("mode", mode).with("report", report.to_json());
    if !smoke {
        let points = scaling_sweep(&sweep::gate_generator());
        let mut arr = Value::array(Vec::new());
        for p in &points {
            println!(
                "[serve] sweep shards {} completed {} throughput_rps {:.1} p99_ns {} \
                 util_permille {}",
                p.shards, p.completed, p.throughput_rps, p.p99_ns, p.util_permille
            );
            arr.push(p.to_json());
        }
        doc.set("scaling_sweep", arr);
    }

    let body = doc.to_string_pretty();
    if let Err(e) = std::fs::write(&out, body + "\n") {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("[serve] wrote {out}");
}
