//! Chaos benchmark: sweeps fault intensity x defence configuration over
//! the pinned gate stream and writes `chaos_report.json`.
//!
//! ```text
//! chaos_bench [--smoke] [--out PATH] [--trace] [--trace-out PATH]
//! ```
//!
//! The sweep first measures the chaos-off p99 on the same stream (the
//! anchor every deadline, backoff and hedge delay derives from), then
//! runs three fault intensities (low/mid/high) against three defence
//! arms: `none` (deadline accounting only), `retries` (bounded retries
//! with exponential backoff), and `full` (retries + hedging +
//! quarantine). Lines tagged `[chaos]` are pinned by
//! `scripts/check.sh --chaos`; the JSON file is compared byte-for-byte
//! across `REPRO_THREADS` settings.
//!
//! The binary enforces the headline claim: at every swept intensity the
//! fully defended arm must attain a strictly higher overall SLO
//! per-mille than the undefended arm, or the run exits non-zero.
//!
//! `--trace` re-runs the mid-intensity/full-defence cell with the
//! observability layer on and writes its fleet timeline (Chrome trace
//! JSON, openable in `chrome://tracing` or Perfetto) to `--trace-out`
//! (default `serve_timeline.json`). The sweep itself stays untraced, so
//! `chaos_report.json` is byte-identical with or without `--trace`.
//! Lines tagged `[trace]` are pinned by `scripts/check.sh
//! --serve-trace`.

use pudiannao_accel::json::Value;
use pudiannao_serve::sweep::{chaos_fleet, chaos_sweep, gate_generator, ChaosCell, CHAOS_SEED};
use pudiannao_serve::{
    export_timeline, serve, serve_observed, ChaosConfig, Defense, GeneratorConfig, ObserveConfig,
};

fn print_cell(cell: &ChaosCell) {
    let res = cell.report.resilience.as_ref().expect("chaos cells are resilient runs");
    let o = &res.outcomes;
    println!(
        "[chaos] cell {} {} completed {} retried_ok {} hedge_won {} timed_out {} failed {} \
         shed {} slo_overall_permille {}",
        ChaosConfig::intensity_label(cell.intensity),
        cell.defense,
        o.completed_total(),
        o.retried_ok,
        o.hedge_won,
        o.timed_out,
        o.failed,
        o.shed,
        res.overall_slo_permille()
    );
    let tiers: Vec<String> = pudiannao_serve::Priority::ALL
        .iter()
        .map(|p| format!("{} {}", p.label(), res.tiers[p.index()].slo_met_permille))
        .collect();
    println!(
        "[chaos] slo {} {} {}",
        ChaosConfig::intensity_label(cell.intensity),
        cell.defense,
        tiers.join(" ")
    );
}

fn main() {
    let mut smoke = false;
    let mut trace = false;
    let mut out = String::from("chaos_report.json");
    let mut trace_out = String::from("serve_timeline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace" => trace = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--trace-out" => {
                trace_out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} (usage: chaos_bench [--smoke] [--out PATH] \
                     [--trace] [--trace-out PATH])"
                );
                std::process::exit(2);
            }
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    let gen = if smoke {
        GeneratorConfig { requests: 2_000, ..gate_generator() }
    } else {
        gate_generator()
    };

    // Anchor: the chaos-off p99 of the same stream on the same fleet.
    let baseline = serve(&chaos_fleet(), &gen);
    let p99 = baseline.p99_ns;
    println!("[chaos] mode {mode}");
    println!("[chaos] baseline_p99_ns {p99}");

    let cells = chaos_sweep(&gen, p99);
    for cell in &cells {
        print_cell(cell);
    }

    // The headline gate: full defences strictly beat no defences on
    // overall SLO attainment at every fault intensity.
    let mut ok = true;
    for intensity in 0..3u32 {
        let slo_of = |arm: &str| {
            cells
                .iter()
                .find(|c| c.intensity == intensity && c.defense == arm)
                .and_then(|c| c.report.resilience.as_ref())
                .map_or(0, |r| r.overall_slo_permille())
        };
        let none = slo_of("none");
        let full = slo_of("full");
        let diff = full as i64 - none as i64;
        println!("[chaos] defended_minus_none {} {diff}", ChaosConfig::intensity_label(intensity));
        if full <= none {
            eprintln!(
                "error: defended SLO attainment {full} does not beat undefended {none} at \
                 intensity {}",
                ChaosConfig::intensity_label(intensity)
            );
            ok = false;
        }
    }

    let mut arr = Value::array(Vec::new());
    for cell in &cells {
        arr.push(cell.to_json());
    }
    let doc = Value::object()
        .with("mode", mode)
        .with("chaos_seed", CHAOS_SEED)
        .with("baseline_p99_ns", p99)
        .with("cells", arr);
    let body = doc.to_string_pretty();
    if let Err(e) = std::fs::write(&out, body + "\n") {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("[chaos] wrote {out}");

    // `--trace`: one extra run of the mid-intensity/full-defence cell
    // with spans and windowed metrics on. The sweep above already ran
    // untraced, so the report file is byte-identical either way.
    if trace {
        let traced = serve_observed(
            &chaos_fleet(),
            &gen,
            &ChaosConfig::intensity(CHAOS_SEED, 1),
            &Defense::full(p99),
            &ObserveConfig::full(gen.requests),
        );
        let check = export_timeline(&traced, &trace_out).unwrap_or_else(|e| {
            eprintln!("error: exporting timeline: {e}");
            std::process::exit(1);
        });
        let obs = traced.observability.as_ref().expect("observed run carries observability");
        let metrics = obs.metrics.as_ref().expect("observed run carries metrics");
        println!("[trace] cell mid full");
        println!(
            "[trace] spans {} instants {} tracks {}",
            check.spans, check.instants, check.tracks
        );
        println!("[trace] events_dropped {}", obs.events_dropped);
        println!(
            "[trace] windows {} windowed_p99_max_ns {}",
            metrics.windows.len(),
            metrics.windowed_p99_max_ns
        );
        println!("[trace] wrote {trace_out}");
    }

    if !ok {
        std::process::exit(1);
    }
}
