//! Serving layer: a multi-device inference fleet behind the unified
//! `Workload` API.
//!
//! The paper evaluates PuDianNao one kernel at a time; this crate asks
//! the deployment question instead: what happens when a *stream* of
//! requests for all 13 benchmark phases hits a pool of devices? The
//! pieces, front to back:
//!
//! * [`gen`] — seeded, integer-only open-loop traffic generator
//!   (bursts, size tiers, malformed requests).
//! * [`admission`] — bounded technique-partitioned queue: load-shedding,
//!   per-technique backpressure, unknown-technique rejection.
//! * [`catalog`] — 13 phases × 3 size tiers of memsim workloads boxed
//!   behind `pudiannao_memsim::Workload`, the redesigned trait every
//!   kernel now dispatches through.
//! * [`fleet`] — discrete-event simulation of the shard pool: one
//!   reusable `SimdEngine` per shard, batches picked by technique to
//!   amortise datapath reconfiguration, waves executed on the
//!   deterministic [`pool`].
//! * [`report`] / [`sweep`] — latency percentiles, throughput, shed
//!   rate, per-device utilisation; 1/2/4/8-shard scaling sweep for the
//!   perf-regression gate.
//! * [`chaos`] — seeded fleet-level fault injection (crash/restart
//!   windows, stragglers, lane-masked degradation reusing the PR-3
//!   device fault model, transient failures) plus the [`chaos::Defense`]
//!   policy (tiered deadlines, bounded retries, hedging, quarantine,
//!   priority-aware shedding) the resilient fleet fights back with.
//! * [`trace`] / [`metrics`] — zero-cost-when-off observability:
//!   per-request lifecycle spans in a bounded ring (exported as a
//!   Chrome-trace fleet timeline), plus windowed log-bucket latency
//!   histograms and rate counters sampled per fixed slice of simulated
//!   time.
//!
//! Determinism is load-bearing: `serve_report.json` and
//! `chaos_report.json` are byte-identical for any `REPRO_THREADS` value,
//! which CI checks on every run — and with chaos off the fleet takes the
//! exact baseline code path, so the chaos layer is zero-cost when unused.

pub mod admission;
pub mod catalog;
pub mod chaos;
pub mod fleet;
pub mod gen;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod request;
pub mod sweep;
pub mod trace;

pub use admission::{AdmissionConfig, AdmissionCounters, AdmissionOutcome, AdmissionQueue};
pub use catalog::{slot_count, slot_index, ServingCatalog, TraceCache, TraceCacheStats};
pub use chaos::{ChaosConfig, Defense, ShardChaos};
pub use fleet::{
    run_fleet, run_fleet_observed, run_fleet_resilient, serve, serve_observed, serve_resilient,
    FleetConfig, ObserveConfig, BATCH_SETUP_NS, RECONFIG_NS, TRACE_CACHE_BYTES,
};
pub use gen::{generate, GeneratorConfig, SplitMix64};
pub use metrics::{LogHistogram, MetricsConfig, MetricsReport, WindowSummary};
pub use report::{
    percentile_ns, shard_verdict, Completion, LatencyBreakdown, ObservabilityReport, OutcomeCounts,
    ResilienceReport, ServeReport, ShardResilience, ShardStats, ShardVerdict, TechniqueStats,
    TierBreakdown, TierSlo,
};
pub use request::{technique_of, Leg, Priority, Request, RequestKind, SizeTier};
pub use sweep::{gate_sweep, scaling_sweep, SweepPoint, SWEEP_SHARDS};
pub use trace::{
    export_timeline, fleet_timeline, FleetTrace, LegOutcome, RootOutcome, SpanEvent, TraceConfig,
};
