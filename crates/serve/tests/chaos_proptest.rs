//! Property tests for the chaos layer: hostile fault plans and defence
//! policies — crash-looping shards, zero deadlines, everything-fails
//! transient rates, lane masks past the physical lane count — must never
//! panic, must account for every offered request exactly once, and must
//! reproduce bit-identically on rerun.

use proptest::prelude::*;
use pudiannao_serve::{
    serve_resilient, ChaosConfig, Defense, FleetConfig, GeneratorConfig, Priority,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the fault plan and defence policy, the seven outcome
    /// classes partition the offered stream: nothing is lost, nothing is
    /// counted twice, and the run never panics.
    #[test]
    fn hostile_chaos_conserves_every_request(
        seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
        requests in 1u64..200,
        mean_gap_ns in 0u64..1_500,
        shards in 1usize..5,
        // mtbf is floored away from zero: window generation is
        // O(makespan / mtbf) and a 1ns mtbf would be a slow test, not a
        // better one.
        crash_mtbf_ns in prop_oneof![Just(0u64), 500u64..100_000],
        crash_mttr_ns in 0u64..80_000,
        crash_prone in (0u32..1_001, 0u64..16),
        straggler in (0u32..1_001, 1_000u64..8_000),
        degraded in (0u32..1_001, 0u32..40),
        transient_per_mille in 0u32..1_001,
        deadlines in prop_oneof![
            Just(None),
            (0u64..3_000_000, 0u64..3_000_000, 0u64..3_000_000).prop_map(|(b, s, g)| Some([b, s, g])),
        ],
        max_retries in 0u32..4,
        retry_backoff_ns in 0u64..200_000,
        hedge_after_ns in prop_oneof![Just(None), (0u64..300_000).prop_map(Some)],
        quarantine_after in 0u32..6,
        quarantine_cooldown_ns in 0u64..200_000,
        priority_shedding in any::<bool>(),
        recover_tier in 0usize..3,
    ) {
        let gen = GeneratorConfig {
            seed,
            requests,
            mean_gap_ns,
            burst_every: 24,
            burst_len: 48,
            unknown_per_mille: 50,
        };
        let (straggler_per_mille, straggler_factor_permille) = straggler;
        let (degraded_per_mille, degraded_lanes) = degraded;
        let (crash_prone_per_mille, crash_prone_divisor) = crash_prone;
        let chaos = ChaosConfig {
            seed: chaos_seed,
            crash_mtbf_ns,
            crash_mttr_ns,
            // The divisor can exceed mtbf/500: prone shards may crash-loop.
            crash_prone_per_mille,
            crash_prone_divisor,
            straggler_per_mille,
            straggler_factor_permille,
            degraded_per_mille,
            degraded_lanes,
            transient_per_mille,
        };
        let defense = Defense {
            deadlines_ns: deadlines,
            max_retries,
            retry_backoff_ns,
            hedge_after_ns,
            recover_from: Priority::ALL[recover_tier],
            quarantine_after,
            quarantine_cooldown_ns,
            priority_shedding,
        };
        let config = FleetConfig::with_shards(shards);
        let report = serve_resilient(&config, &gen, &chaos, &defense);

        prop_assert_eq!(report.counters.offered, requests);
        match &report.resilience {
            Some(res) => {
                // Conservation: offered == completed + timed_out + failed
                //             + shed + rejected, with completions split
                //             into clean / retried / hedge-won.
                prop_assert_eq!(res.outcomes.total(), requests);
                prop_assert_eq!(res.outcomes.completed_total(), report.completed);
                prop_assert_eq!(res.outcomes.rejected, report.counters.rejected);
                // Tier ledgers cover exactly the offered stream too.
                let tier_offered: u64 = res.tiers.iter().map(|t| t.offered).sum();
                prop_assert_eq!(tier_offered, requests);
                for tier in &res.tiers {
                    prop_assert!(tier.slo_met <= tier.completed);
                    prop_assert!(tier.completed + tier.rejected <= tier.offered);
                }
                // Availability is a per-mille ratio; quarantine and crash
                // downtime can never push it past 1000.
                for shard in &res.shards {
                    prop_assert!(shard.availability_permille <= 1000);
                }
            }
            None => {
                // Chaos off + defences off is the PR-7 baseline path.
                prop_assert!(chaos.is_off());
                prop_assert_eq!(report.completed, report.counters.admitted);
            }
        }

        // Reruns are bit-identical: every chaos draw is per-shard state
        // or a pure hash, never wall-clock or scheduling order.
        let again = serve_resilient(&config, &gen, &chaos, &defense);
        prop_assert_eq!(report.counters, again.counters);
        prop_assert_eq!(report.completed, again.completed);
        prop_assert_eq!(report.makespan_ns, again.makespan_ns);
        prop_assert_eq!(report.latencies_sorted_ns, again.latencies_sorted_ns);
        prop_assert_eq!(&report.resilience, &again.resilience);
    }

    /// Zero deadlines are pathological but legal: every admitted request
    /// expires before it can be picked, and the ledger still balances.
    #[test]
    fn zero_deadlines_time_everything_out_cleanly(
        seed in 0u64..100_000,
        requests in 1u64..120,
    ) {
        let gen = GeneratorConfig { seed, requests, ..GeneratorConfig::smoke(0) };
        let defense = Defense { deadlines_ns: Some([0, 0, 0]), ..Defense::off() };
        let report = serve_resilient(
            &FleetConfig::with_shards(2),
            &gen,
            &ChaosConfig::off(),
            &defense,
        );
        let res = report.resilience.expect("deadline accounting forces the resilient path");
        prop_assert_eq!(res.outcomes.total(), requests);
        // Whatever was admitted either timed out at pick or raced a
        // same-instant dispatch; nothing may be silently dropped.
        prop_assert_eq!(
            res.outcomes.completed_total() + res.outcomes.timed_out,
            report.counters.admitted
        );
    }
}
