//! `chaos_report.json` must be byte-identical whatever `REPRO_THREADS`
//! says: fault draws are per-shard state probed in dispatch order or
//! pure hashes of stable identifiers, never shared RNG. This drives the
//! real `chaos_bench` binary the way CI does, so the artifact on disk is
//! what's actually guaranteed.

use std::path::PathBuf;
use std::process::Command;

fn run_smoke(threads: &str, tag: &str) -> (String, Vec<u8>) {
    // The path must not encode `threads`: it is echoed on stdout and the
    // stdout of both runs is compared verbatim. Runs within one test are
    // sequential, so reusing the file is safe.
    let out: PathBuf =
        std::env::temp_dir().join(format!("chaos_determinism_{}_{tag}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_chaos_bench"))
        .args(["--smoke", "--out"])
        .arg(&out)
        .env("REPRO_THREADS", threads)
        .output()
        .expect("chaos_bench runs");
    assert!(
        output.status.success(),
        "chaos_bench failed with REPRO_THREADS={threads}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("chaos_bench prints UTF-8");
    let json = std::fs::read(&out).expect("chaos_bench wrote the report");
    let _ = std::fs::remove_file(&out);
    (stdout, json)
}

#[test]
fn chaos_report_is_byte_identical_across_worker_counts() {
    let (stdout1, json1) = run_smoke("1", "workers");
    let (stdout4, json4) = run_smoke("4", "workers");
    assert_eq!(json1, json4, "chaos_report.json differs between REPRO_THREADS=1 and 4");
    // Every [chaos] line is printed from the main thread after the
    // sweep, so the full transcript must match too.
    assert_eq!(stdout1, stdout4, "stdout differs between worker counts");
}

#[test]
fn repeated_chaos_runs_are_identical() {
    let (_, first) = run_smoke("4", "repeat_a");
    let (_, second) = run_smoke("4", "repeat_b");
    assert_eq!(first, second, "two identical invocations disagreed");
}
