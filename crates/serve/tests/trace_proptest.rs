//! Property tests for the observability layer: whatever the stream,
//! fault plan and defence policy, (1) observation is invisible — the
//! observed run's aggregates are identical to the plain run's, (2) spans
//! conserve — every admitted request opens exactly one root span and
//! closes it exactly once, with every retry/hedge leg inside the root's
//! lifetime, (3) the exported timeline is a well-formed Chrome trace.

use std::collections::BTreeMap;

use proptest::prelude::*;
use pudiannao_serve::{
    fleet_timeline, serve_observed, serve_resilient, ChaosConfig, Defense, FleetConfig,
    GeneratorConfig, MetricsConfig, ObserveConfig, SpanEvent, TraceConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn observation_is_invisible_and_spans_conserve(
        seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
        requests in 1u64..160,
        mean_gap_ns in 0u64..1_200,
        shards in 1usize..5,
        crash_mtbf_ns in prop_oneof![Just(0u64), 2_000u64..100_000],
        crash_mttr_ns in 0u64..50_000,
        transient_per_mille in 0u32..500,
        max_retries in 0u32..3,
        retry_backoff_ns in 0u64..100_000,
        hedge_after_ns in prop_oneof![Just(None), (10_000u64..300_000).prop_map(Some)],
        deadline in prop_oneof![
            Just(None),
            (50_000u64..2_000_000).prop_map(|d| Some([d, d * 2, d * 4])),
        ],
    ) {
        let gen = GeneratorConfig {
            seed,
            requests,
            mean_gap_ns,
            burst_every: 16,
            burst_len: 24,
            unknown_per_mille: 80,
        };
        let chaos = ChaosConfig {
            seed: chaos_seed,
            crash_mtbf_ns,
            crash_mttr_ns,
            transient_per_mille,
            ..ChaosConfig::off()
        };
        let defense = Defense {
            deadlines_ns: deadline,
            max_retries,
            retry_backoff_ns,
            hedge_after_ns,
            ..Defense::off()
        };
        let config = FleetConfig::with_shards(shards);

        let plain = serve_resilient(&config, &gen, &chaos, &defense);
        // A ring far larger than any event count this stream can produce:
        // conservation below relies on nothing being evicted.
        let observe = ObserveConfig {
            trace: Some(TraceConfig { event_capacity: 1 << 20 }),
            metrics: Some(MetricsConfig::default()),
        };
        let observed = serve_observed(&config, &gen, &chaos, &defense, &observe);

        // (1) Observation is invisible: every aggregate the plain run
        // reports is byte-for-byte the same.
        prop_assert_eq!(plain.counters, observed.counters);
        prop_assert_eq!(plain.completed, observed.completed);
        prop_assert_eq!(plain.makespan_ns, observed.makespan_ns);
        prop_assert_eq!(&plain.latencies_sorted_ns, &observed.latencies_sorted_ns);
        prop_assert_eq!(&plain.resilience, &observed.resilience);

        // (2) Span conservation on the raw ring.
        let trace = observed.trace.as_ref().expect("trace was on");
        prop_assert_eq!(trace.events_dropped, 0, "oversized ring must not drop");
        let mut opens: BTreeMap<u64, u64> = BTreeMap::new();
        let mut closes: BTreeMap<u64, u64> = BTreeMap::new();
        for event in trace.events_iter() {
            match *event {
                SpanEvent::RootOpen { id, t, .. } => {
                    prop_assert!(opens.insert(id, t).is_none(), "root {} opened twice", id);
                }
                SpanEvent::RootClose { id, t, .. } => {
                    prop_assert!(opens.contains_key(&id), "root {} closed before opening", id);
                    prop_assert!(closes.insert(id, t).is_none(), "root {} closed twice", id);
                }
                _ => {}
            }
        }
        prop_assert_eq!(
            opens.len() as u64,
            observed.counters.admitted,
            "exactly one root span per admitted request"
        );
        prop_assert_eq!(closes.len(), opens.len(), "every opened root closes exactly once");
        for event in trace.events_iter() {
            if let SpanEvent::Leg { id, enqueued_ns, start_ns, end_ns, .. } = *event {
                let open = opens[&id];
                let close = closes[&id];
                prop_assert!(open <= enqueued_ns, "leg of {} enqueued before its root", id);
                prop_assert!(enqueued_ns <= start_ns, "leg of {} ran before its queue", id);
                prop_assert!(end_ns <= close, "leg of {} outlived its root", id);
            }
        }

        // (3) The exported timeline is well-formed: B/E events balance
        // per track, timestamps are monotone per track.
        let timeline = fleet_timeline(&observed).expect("trace was on");
        let check = pudiannao_accel::profile::validate_timeline(&timeline);
        prop_assert!(check.is_ok(), "timeline invalid: {:?}", check.err());
    }
}
