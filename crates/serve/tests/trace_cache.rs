//! Trace-template-cache equivalence: a leg served by replaying a
//! recorded [`AccessBlock`] must leave the engine bit-identical — report,
//! cache stats, line states — to generating the trace fresh through a
//! [`BatchSink`], for every `(phase, tier)` in the catalog and for every
//! slot state (recording, replay, over-budget). At the fleet level the
//! cache must be invisible: the serialised report is byte-identical with
//! the cache on or off.

use pudiannao_codegen::phases::Phase;
use pudiannao_memsim::{batch, AccessBlock, BatchSink, CacheConfig, SimdEngine};
use pudiannao_serve::{
    serve, FleetConfig, GeneratorConfig, ServingCatalog, SizeTier, TraceCache, TRACE_CACHE_BYTES,
};

fn engine() -> SimdEngine {
    SimdEngine::new(CacheConfig::paper_default()).expect("paper config is valid")
}

fn scratch() -> AccessBlock {
    AccessBlock::with_capacity(CacheConfig::paper_default().line_bytes, batch::FLUSH_ACCESSES + 32)
}

fn fresh_leg(catalog: &ServingCatalog, phase: Phase, tier: SizeTier, engine: &mut SimdEngine) {
    let mut block = scratch();
    let mut sink = BatchSink::new(engine, &mut block);
    catalog.get(phase, tier).trace(&mut sink);
    sink.finish();
}

fn states(engine: &SimdEngine) -> Vec<(u32, u32, u64, bool, bool, u64)> {
    engine
        .cache()
        .line_states()
        .into_iter()
        .map(|l| (l.set, l.way, if l.valid { l.tag } else { 0 }, l.valid, l.dirty, l.stamp))
        .collect()
}

fn assert_engines_equal(cached: &SimdEngine, fresh: &SimdEngine, what: &str) {
    assert_eq!(cached.report(), fresh.report(), "{what}: bandwidth report");
    assert_eq!(cached.cache_stats(), fresh.cache_stats(), "{what}: cache stats");
    assert_eq!(states(cached), states(fresh), "{what}: line states");
}

/// Every `(phase, tier)` leg, run twice — once recording, once replaying
/// — matches two fresh generations of the same trace. Small tiers cover
/// all 39 slots; the Large tier of each phase is the biggest template,
/// so it exercises the recording path hardest.
#[test]
fn cached_replay_matches_fresh_generation() {
    let catalog = ServingCatalog::paper_default();
    for phase in Phase::ALL {
        for tier in [SizeTier::Small, SizeTier::Large] {
            let mut cache = TraceCache::new(TRACE_CACHE_BYTES);
            let mut buf = scratch();
            let mut cached = engine();
            let mut fresh = engine();
            // First leg: the cache records while committing.
            cache.execute(&catalog, phase, tier, &mut cached, &mut buf);
            fresh_leg(&catalog, phase, tier, &mut fresh);
            assert_engines_equal(&cached, &fresh, &format!("{phase:?}/{tier:?} recording leg"));
            // Second leg: the cache replays the recorded block.
            cache.execute(&catalog, phase, tier, &mut cached, &mut buf);
            fresh_leg(&catalog, phase, tier, &mut fresh);
            assert_engines_equal(&cached, &fresh, &format!("{phase:?}/{tier:?} replay leg"));
            let stats = cache.stats();
            assert_eq!((stats.hits, stats.misses), (1, 1), "{phase:?}/{tier:?} counters");
            assert_eq!((stats.ready_slots, stats.too_big_slots), (1, 0));
        }
    }
}

/// A zero-budget cache can never go Ready: every leg generates fresh
/// (first use via the recording commit, afterwards via the chunked
/// `TooBig` path) and still matches plain `BatchSink` generation.
#[test]
fn over_budget_slots_still_match_fresh_generation() {
    let catalog = ServingCatalog::paper_default();
    let phase = Phase::KnnPrediction;
    let mut cache = TraceCache::new(0);
    let mut buf = scratch();
    let mut cached = engine();
    let mut fresh = engine();
    for round in 0..3 {
        cache.execute(&catalog, phase, SizeTier::Medium, &mut cached, &mut buf);
        fresh_leg(&catalog, phase, SizeTier::Medium, &mut fresh);
        assert_engines_equal(&cached, &fresh, &format!("zero-budget round {round}"));
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (0, 3));
    assert_eq!((stats.ready_slots, stats.too_big_slots, stats.resident_bytes), (0, 1, 0));
}

/// Fleet level: the cache only moves wall-clock and memory. The
/// serialised report of a run with the cache on is byte-identical to the
/// same run with it off, and the in-memory counters attach only to the
/// cached run — they never leak into the JSON.
#[test]
fn fleet_report_is_byte_identical_cache_on_or_off() {
    let gen = GeneratorConfig { requests: 800, ..GeneratorConfig::smoke(77) };
    let on_cfg = FleetConfig::with_shards(2);
    let off_cfg = FleetConfig { trace_cache_bytes: 0, ..FleetConfig::with_shards(2) };
    assert_eq!(on_cfg.trace_cache_bytes, TRACE_CACHE_BYTES, "cache defaults on");

    let on = serve(&on_cfg, &gen);
    let off = serve(&off_cfg, &gen);
    assert_eq!(
        on.to_json().to_string_pretty(),
        off.to_json().to_string_pretty(),
        "report JSON differs with trace cache on vs off"
    );

    let stats = on.trace_cache.expect("cached run reports cache counters");
    assert!(stats.hits > 0, "smoke stream repeats phases, so replays must happen");
    assert!(stats.ready_slots > 0);
    assert!(off.trace_cache.is_none(), "disabled cache reports no counters");
    // The counters live outside the serialised schema entirely.
    assert!(!on.to_json().to_string_pretty().contains("trace_cache"));
}
