//! Property tests for the serving layer: hostile request mixes — deep
//! bursts, all-unknown streams, zero-capacity queues, single-request
//! batches — must never panic, must conserve request counts, and must be
//! reproducible.

use proptest::prelude::*;
use pudiannao_serve::{AdmissionConfig, FleetConfig, GeneratorConfig, ServingCatalog};

fn fleet(
    shards: usize,
    max_batch: usize,
    per_technique_cap: usize,
    global_cap: usize,
) -> FleetConfig {
    FleetConfig {
        shards,
        max_batch,
        admission: AdmissionConfig { per_technique_cap, global_cap, priority_aware: false },
        trace_cache_bytes: pudiannao_serve::TRACE_CACHE_BYTES,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the traffic shape and queue bounds, every offered request
    /// is accounted for exactly once and every admitted request completes.
    #[test]
    fn hostile_mixes_conserve_counts(
        seed in 0u64..1_000_000,
        requests in 1u64..260,
        mean_gap_ns in 0u64..2_000,
        burst_every in 0u64..48,
        burst_len in 0u64..400,
        unknown_per_mille in 0u32..1_001,
        shards in 1usize..5,
        caps in (1usize..32, 0usize..24, 0usize..160),
    ) {
        let (max_batch, per_technique_cap, global_cap) = caps;
        let gen = GeneratorConfig {
            seed,
            requests,
            mean_gap_ns,
            burst_every,
            burst_len,
            unknown_per_mille,
        };
        let config = fleet(shards, max_batch, per_technique_cap, global_cap);
        let report = pudiannao_serve::serve(&config, &gen);

        prop_assert_eq!(report.counters.offered, requests);
        prop_assert_eq!(
            report.counters.admitted + report.counters.shed + report.counters.rejected,
            report.counters.offered
        );
        prop_assert_eq!(report.completed, report.counters.admitted);
        prop_assert_eq!(report.latencies_sorted_ns.len() as u64, report.completed);
        // Percentiles come off one sorted vector; they must be ordered.
        prop_assert!(report.p50_ns <= report.p99_ns);
        prop_assert!(report.p99_ns <= report.p999_ns);
        prop_assert!(report.p999_ns <= report.max_ns);
        // Shards never report more work than was admitted.
        let shard_requests: u64 = report.shards.iter().map(|s| s.requests).sum();
        prop_assert_eq!(shard_requests, report.completed);
    }

    /// A stream of nothing but unknown techniques is rejected wholesale:
    /// nothing is queued, nothing runs, nothing panics.
    #[test]
    fn all_unknown_streams_are_fully_rejected(
        seed in 0u64..100_000,
        requests in 1u64..120,
        shards in 1usize..4,
    ) {
        let gen = GeneratorConfig {
            seed,
            requests,
            mean_gap_ns: 100,
            burst_every: 0,
            burst_len: 0,
            unknown_per_mille: 1_000,
        };
        let report = pudiannao_serve::serve(&FleetConfig::with_shards(shards), &gen);
        prop_assert_eq!(report.counters.rejected, requests);
        prop_assert_eq!(report.completed, 0);
        prop_assert_eq!(report.makespan_ns, 0);
    }

    /// Zero queue capacity converts the whole (known-technique) stream
    /// into sheds — the fleet idles rather than deadlocking.
    #[test]
    fn zero_capacity_sheds_everything(
        seed in 0u64..100_000,
        requests in 1u64..120,
    ) {
        let gen = GeneratorConfig {
            seed,
            requests,
            mean_gap_ns: 50,
            burst_every: 4,
            burst_len: 16,
            unknown_per_mille: 0,
        };
        let report = pudiannao_serve::serve(&fleet(2, 8, 0, 0), &gen);
        prop_assert_eq!(report.counters.shed, requests);
        prop_assert_eq!(report.completed, 0);
    }

    /// The same stream through the same fleet twice gives bit-identical
    /// headline numbers (the library-level determinism the byte-identity
    /// test checks end-to-end through the binary).
    #[test]
    fn reruns_reproduce_the_report(
        seed in 0u64..1_000_000,
        requests in 1u64..160,
        shards in 1usize..5,
    ) {
        let gen = GeneratorConfig { seed, requests, ..GeneratorConfig::smoke(0) };
        let config = FleetConfig::with_shards(shards);
        let a = pudiannao_serve::serve(&config, &gen);
        let b = pudiannao_serve::serve(&config, &gen);
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.latencies_sorted_ns, b.latencies_sorted_ns);
        prop_assert_eq!(a.p99_ns, b.p99_ns);
    }
}

/// Sanity outside the proptest harness: the catalog resolves every
/// (phase, tier) pair the generator can emit, so dispatch can never miss.
#[test]
fn catalog_is_total_over_generated_streams() {
    let catalog = ServingCatalog::paper_default();
    let gen = GeneratorConfig { unknown_per_mille: 0, ..GeneratorConfig::smoke(99) };
    for request in pudiannao_serve::generate(&gen).iter().take(500) {
        let pudiannao_serve::RequestKind::Phase(phase) = request.kind else {
            panic!("unknown_per_mille=0 must not emit unknowns");
        };
        let workload = catalog.get(phase, request.tier);
        assert!(!workload.name().is_empty());
    }
}
