//! `serve_timeline.json` must be byte-identical whatever `REPRO_THREADS`
//! says: every span is recorded from the sequential wave-order result
//! loop, never from worker threads. This drives the real `chaos_bench
//! --trace` binary the way CI does, so the artifact on disk is what's
//! actually guaranteed.

use std::path::PathBuf;
use std::process::Command;

fn run_traced(threads: &str, tag: &str) -> (String, Vec<u8>) {
    // Paths must not encode `threads`: they are echoed on stdout and the
    // stdout of both runs is compared verbatim.
    let pid = std::process::id();
    let out: PathBuf = std::env::temp_dir().join(format!("trace_det_report_{pid}_{tag}.json"));
    let tl: PathBuf = std::env::temp_dir().join(format!("trace_det_timeline_{pid}_{tag}.json"));
    let output = Command::new(env!("CARGO_BIN_EXE_chaos_bench"))
        .args(["--smoke", "--trace", "--out"])
        .arg(&out)
        .arg("--trace-out")
        .arg(&tl)
        .env("REPRO_THREADS", threads)
        .output()
        .expect("chaos_bench runs");
    assert!(
        output.status.success(),
        "chaos_bench --trace failed with REPRO_THREADS={threads}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("chaos_bench prints UTF-8");
    let timeline = std::fs::read(&tl).expect("chaos_bench wrote the timeline");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&tl);
    (stdout, timeline)
}

#[test]
fn serve_timeline_is_byte_identical_across_worker_counts() {
    let (stdout1, tl1) = run_traced("1", "workers");
    let (stdout4, tl4) = run_traced("4", "workers");
    assert_eq!(tl1, tl4, "serve_timeline.json differs between REPRO_THREADS=1 and 4");
    // The [trace] lines (span/track counts, windowed p99) are part of
    // the contract too.
    assert_eq!(stdout1, stdout4, "stdout differs between worker counts");
}
