//! Pinned chaos scenarios: the defence mechanisms must actually earn
//! their keep on concrete fault regimes, not just bookkeep cleanly.
//!
//! Everything here is deterministic — pinned seeds, pinned streams — so
//! these are exact regression tests, not flaky statistical ones.

use pudiannao_serve::sweep::{chaos_fleet, chaos_sweep, gate_generator, CHAOS_SEED};
use pudiannao_serve::{serve, serve_resilient, ChaosConfig, Defense, FleetConfig, GeneratorConfig};

/// The smoke-sized slice of the pinned gate stream (same shape and seed,
/// fewer requests), matching `chaos_bench --smoke`.
fn smoke_stream() -> GeneratorConfig {
    GeneratorConfig { requests: 2_000, ..gate_generator() }
}

/// A sick-host regime: the fleet's base crash rate is benign, but a
/// crash-prone draw gives one shard a 100x shorter mean up-time — the
/// persistently bad machine real fleets quarantine. Crashes on healthy
/// shards are memoryless, so this concentration is precisely what makes
/// quarantine predictive rather than just capacity-destroying.
fn sick_host() -> ChaosConfig {
    ChaosConfig {
        seed: CHAOS_SEED,
        crash_mtbf_ns: 2_000_000,
        crash_mttr_ns: 30_000,
        crash_prone_per_mille: 250,
        crash_prone_divisor: 100,
        straggler_per_mille: 0,
        straggler_factor_permille: 1_000,
        degraded_per_mille: 0,
        degraded_lanes: 0,
        transient_per_mille: 0,
    }
}

/// Quarantining a crash-looping shard strictly improves the completion
/// tail: with retries alone, a re-dispatched leg can land on the same
/// dying shard again and again, each round trip fattening p99.9; with
/// quarantine, two wholesale-killed batches pull the shard out of
/// rotation long enough for retries to land on healthy peers.
#[test]
fn quarantine_pulls_a_crash_looping_shard_out_of_the_tail() {
    let gen = smoke_stream();
    let fleet = FleetConfig::paper_default();
    let p99 = serve(&fleet, &gen).p99_ns;
    let chaos = sick_host();
    let retries_only = Defense::retries(p99);
    let with_quarantine = Defense {
        quarantine_after: 2,
        quarantine_cooldown_ns: p99.saturating_mul(8),
        ..retries_only
    };

    let undefended = serve_resilient(&fleet, &gen, &chaos, &retries_only);
    let defended = serve_resilient(&fleet, &gen, &chaos, &with_quarantine);

    let res = defended.resilience.as_ref().expect("chaos run is resilient");
    let quarantines: u64 = res.shards.iter().map(|s| s.quarantines).sum();
    assert!(quarantines > 0, "the crash-loop regime must actually trip quarantine");
    assert!(
        defended.p999_ns < undefended.p999_ns,
        "quarantine must strictly improve p99.9: defended {} vs undefended {}",
        defended.p999_ns,
        undefended.p999_ns
    );
}

/// The headline acceptance claim, library-level: at every swept fault
/// intensity the fully defended arm attains strictly more SLO than the
/// undefended arm. `chaos_bench` enforces the same invariant end-to-end
/// on both the smoke and the full 8k stream.
#[test]
fn full_defences_strictly_beat_none_at_every_intensity() {
    let gen = smoke_stream();
    let p99 = serve(&chaos_fleet(), &gen).p99_ns;
    let cells = chaos_sweep(&gen, p99);
    assert_eq!(cells.len(), 9, "3 intensities x 3 arms");
    for intensity in 0..3u32 {
        let slo = |arm: &str| {
            cells
                .iter()
                .find(|c| c.intensity == intensity && c.defense == arm)
                .and_then(|c| c.report.resilience.as_ref())
                .map(pudiannao_serve::ResilienceReport::overall_slo_permille)
                .expect("cell exists and is resilient")
        };
        let (none, retries, full) = (slo("none"), slo("retries"), slo("full"));
        assert!(
            full > none,
            "intensity {intensity}: full defences {full} must strictly beat none {none}"
        );
        // Retries alone sit between: they recover transient and crash
        // losses but do nothing for stragglers.
        assert!(
            retries > none,
            "intensity {intensity}: retries {retries} must strictly beat none {none}"
        );
    }
    // The mechanisms the sweep claims to exercise actually fired.
    let full_high = cells
        .iter()
        .find(|c| c.intensity == 2 && c.defense == "full")
        .and_then(|c| c.report.resilience.as_ref())
        .expect("high-intensity full cell");
    assert!(full_high.hedges_launched > 0, "hedging must fire under heavy stragglers");
    assert!(full_high.outcomes.retried_ok > 0, "retries must recover something");
    assert!(
        full_high.shards.iter().any(|s| s.availability_permille < 1_000),
        "crash windows must cost some shard availability"
    );
}

/// Priority-aware degradation: under the same overload, gold traffic's
/// SLO attainment must never fall below bronze's — shedding and recovery
/// both favour the premium tiers.
#[test]
fn premium_tiers_degrade_last() {
    let gen = smoke_stream();
    let p99 = serve(&chaos_fleet(), &gen).p99_ns;
    let cells = chaos_sweep(&gen, p99);
    for cell in cells.iter().filter(|c| c.defense == "full") {
        let res = cell.report.resilience.as_ref().expect("resilient cell");
        let [bronze, _, gold] = [
            res.tiers[0].slo_met_permille,
            res.tiers[1].slo_met_permille,
            res.tiers[2].slo_met_permille,
        ];
        assert!(
            gold >= bronze,
            "intensity {}: gold attainment {gold} fell below bronze {bronze}",
            cell.intensity
        );
    }
}
