//! Criterion benches for the accelerator simulator's kernel execution —
//! how fast the *simulator* runs, per simulated phase kind.

use criterion::{criterion_group, criterion_main, Criterion};
use pudiannao_accel::{isa, Accelerator, ArchConfig, Dram};
use pudiannao_codegen::distance::{DistanceKernel, DistancePlan, DistancePost};
use pudiannao_codegen::dot::{BroadcastDot, BroadcastPlan};
use pudiannao_codegen::nb::{candidate_rows, NbTrainKernel, NbTrainPlan};

fn dram_with_noise(elems: usize) -> Dram {
    let mut dram = Dram::new(elems);
    let values: Vec<f32> = (0..4096).map(|i| (i % 97) as f32 / 97.0).collect();
    let mut at = 0u64;
    while (at as usize) + values.len() <= elems / 2 {
        dram.write_f32(at, &values);
        at += values.len() as u64;
    }
    dram
}

fn bench_distance_program(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let kernel = DistanceKernel {
        name: "k-means",
        features: 32,
        hot_rows: 64,
        cold_rows: 512,
        post: DistancePost::Sort { k: 1 },
    };
    let plan = DistancePlan { hot_dram: 0, cold_dram: 100_000, out_dram: 800_000 };
    let program = kernel.generate(&cfg, &plan).expect("generates");
    c.bench_function("accel/distance_sort_64x512x32", |b| {
        b.iter_batched(
            || (Accelerator::new(cfg.clone()).expect("valid"), dram_with_noise(1 << 20)),
            |(mut accel, mut dram)| accel.run(&program, &mut dram).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_dot_program(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let kernel = BroadcastDot { name: "lr", width: 1024, cold_rows: 256, activation: None };
    let plan = BroadcastPlan { hot_dram: 0, cold_dram: 100_000, out_dram: 800_000 };
    let program = kernel.generate(&cfg, &plan).expect("generates");
    c.bench_function("accel/broadcast_dot_1024x256", |b| {
        b.iter_batched(
            || (Accelerator::new(cfg.clone()).expect("valid"), dram_with_noise(1 << 20)),
            |(mut accel, mut dram)| accel.run(&program, &mut dram).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_count_program(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let kernel = NbTrainKernel { features: 8, values: 5, class_counts: vec![512; 5] };
    let plan = NbTrainPlan { instances_dram: 0, candidates_dram: 200_000, counters_dram: 300_000 };
    let program = kernel.generate(&cfg, &plan).expect("generates");
    c.bench_function("accel/nb_count_2560x8x5", |b| {
        b.iter_batched(
            || {
                let mut dram = Dram::new(1 << 20);
                // Integer-coded features in 0..5.
                for i in 0..2560usize {
                    let row: Vec<f32> = (0..8).map(|j| ((i + j) % 5) as f32).collect();
                    dram.write_f32((i * 8) as u64, &row);
                }
                dram.write_f32(200_000, &candidate_rows(5, 8));
                (Accelerator::new(cfg.clone()).expect("valid"), dram)
            },
            |(mut accel, mut dram)| accel.run(&program, &mut dram).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_single_instruction(c: &mut Criterion) {
    let cfg = ArchConfig::paper_default();
    let inst = isa::Instruction {
        name: "dist".into(),
        hot: isa::BufferRead::load(0, 0, 16, 64),
        cold: isa::BufferRead::load(4096, 0, 16, 32),
        out: isa::OutputSlot::store(500_000, 64, 32),
        fu: isa::FuOps::distance(None),
        hot_row_base: 0,
    };
    let program = isa::Program::new(vec![inst]).expect("non-empty");
    c.bench_function("accel/one_distance_instruction_64x32x16", |b| {
        b.iter_batched(
            || (Accelerator::new(cfg.clone()).expect("valid"), dram_with_noise(1 << 20)),
            |(mut accel, mut dram)| accel.run(&program, &mut dram).expect("runs"),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_distance_program, bench_dot_program, bench_count_program, bench_single_instruction
}
criterion_main!(benches);
