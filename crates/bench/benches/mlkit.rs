//! Criterion benches for the golden ML implementations.

use criterion::{criterion_group, criterion_main, Criterion};
use pudiannao_datasets::synth;
use pudiannao_mlkit::{kmeans, knn, linreg, nb, tree};

fn bench_knn(c: &mut Criterion) {
    let data = synth::gaussian_blobs(&synth::BlobsConfig {
        instances: 1000,
        features: 32,
        classes: 4,
        spread: 0.1,
        seed: 1,
    });
    let model = knn::KnnClassifier::fit(&data, knn::KnnConfig { k: 5, ..Default::default() })
        .expect("fits");
    let queries = data.features.select_rows(&(0..100).collect::<Vec<_>>());
    c.bench_function("mlkit/knn_predict_100q_1000r_32f", |b| {
        b.iter(|| model.predict(&queries).expect("predicts"));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let data = synth::gaussian_blobs(&synth::BlobsConfig {
        instances: 1000,
        features: 16,
        classes: 8,
        spread: 0.08,
        seed: 2,
    });
    c.bench_function("mlkit/kmeans_fit_1000x16_k8", |b| {
        b.iter(|| {
            kmeans::KMeans::fit(
                &data.features,
                kmeans::KMeansConfig { k: 8, max_iters: 20, seed: 3, ..Default::default() },
            )
            .expect("fits")
        });
    });
}

fn bench_linreg(c: &mut Criterion) {
    let (data, _) = synth::linear_teacher(500, 32, 0.01, 4);
    c.bench_function("mlkit/linreg_fit_500x32", |b| {
        b.iter(|| {
            linreg::LinearRegression::fit(
                &data,
                linreg::LinRegConfig { epochs: 50, ..Default::default() },
            )
            .expect("fits")
        });
    });
}

fn bench_nb_and_tree(c: &mut Criterion) {
    let cat = synth::categorical(&synth::CategoricalConfig {
        instances: 2000,
        features: 8,
        values: 5,
        classes: 5,
        seed: 5,
    });
    c.bench_function("mlkit/nb_fit_2000x8", |b| {
        b.iter(|| {
            nb::NaiveBayes::fit(&cat, nb::NbConfig { values: 5, ..Default::default() })
                .expect("fits")
        });
    });
    let teacher = synth::tree_teacher(1000, 8, 5, 4, 6);
    c.bench_function("mlkit/id3_fit_1000x8_depth5", |b| {
        b.iter(|| tree::DecisionTree::fit(&teacher, tree::TreeConfig::default()).expect("fits"));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_knn, bench_kmeans, bench_linreg, bench_nb_and_tree
}
criterion_main!(benches);
