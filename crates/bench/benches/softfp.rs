//! Criterion benches for the binary16 software floats.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pudiannao_softfp::{int_path, InterpTable, NonLinearFn, F16};

fn bench_f16_ops(c: &mut Criterion) {
    let xs: Vec<F16> = (0..1024).map(|i| F16::from_f32(i as f32 * 0.01 - 5.0)).collect();
    let ys: Vec<F16> = (0..1024).map(|i| F16::from_f32(3.0 - i as f32 * 0.005)).collect();

    c.bench_function("softfp/f16_mul_widening_1k", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc += black_box(x) * black_box(y);
            }
            acc
        });
    });

    c.bench_function("softfp/f16_mul_integer_path_1k", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc = int_path::add(acc, int_path::mul(black_box(x), black_box(y)));
            }
            acc
        });
    });

    c.bench_function("softfp/f32_to_f16_round_trip_1k", |b| {
        b.iter(|| {
            let mut sum = 0.0f32;
            for i in 0..1024 {
                sum += F16::from_f32(black_box(i as f32 * 0.37)).to_f32();
            }
            sum
        });
    });
}

fn bench_interp(c: &mut Criterion) {
    let table = InterpTable::for_function(NonLinearFn::Sigmoid, 256).expect("valid");
    c.bench_function("softfp/interp_sigmoid_1k", |b| {
        b.iter(|| {
            let mut sum = 0.0f32;
            for i in 0..1024 {
                sum += table.eval(black_box(i as f32 * 0.01 - 5.0));
            }
            sum
        });
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_f16_ops, bench_interp
}
criterion_main!(benches);
