//! Criterion benches for the Section-2 cache simulator — the tiling
//! experiments of Figures 2 and 4 as timed workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use pudiannao_memsim::{kernels, Access, Addr, Cache, CacheConfig, VarClass};

use kernels::run_fresh;

fn bench_cache_throughput(c: &mut Criterion) {
    c.bench_function("memsim/cache_1m_sequential_reads", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::paper_default()).expect("valid"),
            |mut cache| {
                for i in 0..1_000_000u64 {
                    cache.access(Access::read(Addr((i * 32) % (1 << 22)), 32, VarClass::Hot));
                }
                cache.stats().offchip_bytes()
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_knn_tiling(c: &mut Criterion) {
    let cfg = CacheConfig::paper_default();
    let shape = kernels::knn::DistanceShape { testing: 64, reference: 512, features: 32 };
    c.bench_function("memsim/fig02_knn_untiled", |b| {
        b.iter(|| run_fresh(&kernels::knn::Untiled { shape }, &cfg));
    });
    c.bench_function("memsim/fig02_knn_tiled", |b| {
        b.iter(|| run_fresh(&kernels::knn::Tiled::bandwidth(shape, 32, 32), &cfg));
    });
}

fn bench_kmeans_tiling(c: &mut Criterion) {
    let cfg = CacheConfig::paper_default();
    let shape = kernels::kmeans::KMeansShape { instances: 1024, centroids: 64, features: 32 };
    c.bench_function("memsim/fig04_kmeans_tiled", |b| {
        b.iter(|| run_fresh(&kernels::kmeans::Tiled { shape, tc: 32, tn: 32 }, &cfg));
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache_throughput, bench_knn_tiling, bench_kmeans_tiling
}
criterion_main!(benches);
