//! The profiler pipeline must be a pure function of the built-in
//! workloads: timeline, phase reports, history records and diffs are
//! byte-identical whether the phase models run on one worker or many.

use std::process::Command;

fn run_profile(threads: &str, dir: &std::path::Path) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    std::fs::create_dir_all(dir).unwrap();
    // Run from inside `dir` with the default out-dir so the printed
    // paths (and therefore the stdout bytes) are directory-independent.
    let out = Command::new(env!("CARGO_BIN_EXE_profile"))
        .current_dir(dir)
        .env("REPRO_THREADS", threads)
        .output()
        .expect("profile binary runs");
    assert!(out.status.success(), "profile failed with REPRO_THREADS={threads}");
    (
        out.stdout,
        std::fs::read(dir.join("trace_timeline.json")).expect("timeline written"),
        std::fs::read(dir.join("phase_reports.json")).expect("phase reports written"),
    )
}

#[test]
fn profile_outputs_are_identical_at_any_thread_count() {
    let root = std::env::temp_dir().join(format!("profile_determinism_{}", std::process::id()));
    let serial = run_profile("1", &root.join("serial"));
    let parallel = run_profile("4", &root.join("parallel"));
    assert!(!serial.1.is_empty());
    assert_eq!(serial.0, parallel.0, "worker count changed the summary bytes");
    assert_eq!(serial.1, parallel.1, "worker count changed trace_timeline.json");
    assert_eq!(serial.2, parallel.2, "worker count changed phase_reports.json");
    let stdout = String::from_utf8(serial.0).unwrap();
    // 15 marker lines: the timeline check, one verdict per Figure-15
    // phase (13), and the surfaced drop count.
    assert_eq!(stdout.lines().filter(|l| l.starts_with("[profile] ")).count(), 15);
    assert!(stdout.contains("[profile] events_dropped 0"));
    let _ = std::fs::remove_dir_all(&root);
}

fn perf_diff(threads: &str, args: &[&str], dir: &std::path::Path) -> std::process::Output {
    let out = Command::new(env!("CARGO_BIN_EXE_perf_diff"))
        .args(args)
        .env("REPRO_THREADS", threads)
        .current_dir(dir)
        .output()
        .expect("perf_diff binary runs");
    out
}

#[test]
fn perf_gate_is_deterministic_and_catches_synthetic_regressions() {
    let dir = std::env::temp_dir().join(format!("perf_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Records are byte-identical at any thread count.
    let a = perf_diff("1", &["--record", "--history", "a.jsonl"], &dir);
    let b = perf_diff("4", &["--record", "--history", "b.jsonl"], &dir);
    assert!(a.status.success() && b.status.success());
    let (ha, hb) =
        (std::fs::read(dir.join("a.jsonl")).unwrap(), std::fs::read(dir.join("b.jsonl")).unwrap());
    assert!(!ha.is_empty());
    assert_eq!(ha, hb, "worker count changed the history record bytes");

    // A clean re-check passes; its report is thread-count-independent too.
    let c1 = perf_diff("1", &["--check", "--history", "a.jsonl"], &dir);
    let c4 = perf_diff("4", &["--check", "--history", "a.jsonl"], &dir);
    assert!(c1.status.success(), "clean check must pass the gate");
    assert_eq!(c1.stdout, c4.stdout, "worker count changed the diff bytes");

    // A synthetic +5% cycle regression fails the 2% gate.
    let bad =
        perf_diff("1", &["--check", "--history", "a.jsonl", "--inflate-cycles-pct", "5"], &dir);
    assert_eq!(bad.status.code(), Some(1), "a +5%% regression must fail the gate");
    assert!(String::from_utf8_lossy(&bad.stdout).contains("[perf] FAIL"));

    // A missing history is a usage error, not a pass.
    let missing = perf_diff("1", &["--check", "--history", "nope.jsonl"], &dir);
    assert_eq!(missing.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}
