//! The fault campaign must be a pure function of its seed: the JSON
//! report is byte-identical whether the cells run on one worker or many.

use std::process::Command;

fn run_campaign(threads: &str, out: &std::path::Path) -> Vec<u8> {
    let status = Command::new(env!("CARGO_BIN_EXE_fault_campaign"))
        .args(["--smoke", "--out"])
        .arg(out)
        .env("REPRO_THREADS", threads)
        .status()
        .expect("fault_campaign binary runs");
    assert!(status.success(), "campaign failed with REPRO_THREADS={threads}");
    std::fs::read(out).expect("campaign wrote its report")
}

#[test]
fn campaign_json_is_identical_at_any_thread_count() {
    let dir = std::env::temp_dir().join(format!("fault_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let serial = run_campaign("1", &dir.join("serial.json"));
    let parallel = run_campaign("4", &dir.join("parallel.json"));
    let again = run_campaign("4", &dir.join("again.json"));
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "worker count changed the campaign bytes");
    assert_eq!(parallel, again, "repeated run changed the campaign bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_repro_threads_warns_but_still_runs() {
    let dir = std::env::temp_dir().join(format!("fault_threads_warn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_fault_campaign"))
        .args(["--smoke", "--out"])
        .arg(dir.join("warned.json"))
        .env("REPRO_THREADS", "lots")
        .output()
        .expect("fault_campaign binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid REPRO_THREADS"), "stderr was: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
