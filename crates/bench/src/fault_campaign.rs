//! Seeded fault-injection campaign across the seven ML kernels.
//!
//! For every (hardening arm, kernel, fault rate) cell the campaign runs a
//! batch of trials, each on a fresh accelerator and a fresh copy of the
//! kernel's inputs, with a per-trial fault seed derived deterministically
//! from the campaign seed. Each trial is classified against a fault-free
//! golden run:
//!
//! - **masked** — outputs byte-identical, no correction fired (the upset
//!   hit dead data, was overwritten, or never struck);
//! - **corrected** — outputs byte-identical and SEC-DED repaired at least
//!   one word;
//! - **detected** — the run aborted with a typed detection error
//!   (uncorrectable ECC, instruction-stream checksum, lane fault,
//!   watchdog);
//! - **sdc** — the run completed but the outputs differ (silent data
//!   corruption);
//! - **crash** — the run aborted with a non-detection error (a corrupted
//!   instruction driving a bounds violation, say).
//!
//! A separate graceful-degradation scenario pins a stuck-at MLU lane on
//! the k-Means kernel with masking enabled and checks the machine
//! finishes with correct-within-tolerance outputs at a higher cycle
//! count.
//!
//! Every number in the resulting JSON is a pure function of
//! [`CampaignConfig`]: trials are parallelised with
//! [`crate::parallel::run_indexed`], whose results come back in job
//! order, so the file is byte-identical at any `REPRO_THREADS`.

use pudiannao_accel::json::Value;
use pudiannao_accel::{
    Accelerator, ArchConfig, Dram, ExecError, FaultConfig, FaultPlan, Hardening, Program,
};
use pudiannao_codegen::ct::{HeapTree, TreeWalkKernel, TreeWalkPlan};
use pudiannao_codegen::distance::{DistanceKernel, DistancePlan, DistancePost};
use pudiannao_codegen::dot::{BroadcastDot, BroadcastPlan};
use pudiannao_codegen::nb::{NbPredictKernel, NbPredictPlan};
use pudiannao_codegen::pipelines::{MlpForward, MlpForwardPlan, SvmPredict, SvmPredictPlan};
use pudiannao_softfp::NonLinearFn;

/// Campaign shape: the seed, the trial count per cell, and the fault
/// rates to sweep.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed every per-trial fault seed derives from.
    pub seed: u64,
    /// Trials per (arm, kernel, rate) cell.
    pub trials: usize,
    /// Base fault rates (buffer-upset probability per instruction; the
    /// other sites scale down from it).
    pub rates: Vec<f64>,
}

impl CampaignConfig {
    /// The full sweep used by the `fault_campaign` binary.
    #[must_use]
    pub fn full() -> CampaignConfig {
        CampaignConfig { seed: 0x50_44_4e_01, trials: 12, rates: vec![0.02, 0.1, 0.4] }
    }

    /// A small fixed-seed campaign for the `check.sh --faults` smoke
    /// gate.
    #[must_use]
    pub fn smoke() -> CampaignConfig {
        CampaignConfig { seed: 0x50_44_4e_01, trials: 4, rates: vec![0.25] }
    }
}

/// Outcome tallies of one campaign cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Outputs identical, nothing corrected.
    pub masked: u64,
    /// Outputs identical after at least one SEC-DED repair.
    pub corrected: u64,
    /// Typed detection error.
    pub detected: u64,
    /// Completed with wrong outputs.
    pub sdc: u64,
    /// Non-detection error.
    pub crash: u64,
}

impl OutcomeCounts {
    /// Accumulates another tally into this one.
    pub fn add(&mut self, other: &OutcomeCounts) {
        self.masked += other.masked;
        self.corrected += other.corrected;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.crash += other.crash;
    }

    /// Total trials tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.corrected + self.detected + self.sdc + self.crash
    }

    /// JSON object with one key per outcome class.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("masked", self.masked)
            .with("corrected", self.corrected)
            .with("detected", self.detected)
            .with("sdc", self.sdc)
            .with("crash", self.crash)
    }
}

/// One kernel under test: its program, pristine inputs, and the DRAM
/// regions holding the outputs that define correctness.
struct KernelCase {
    name: &'static str,
    program: Program,
    dram: Dram,
    /// `(addr, elems)` output regions compared bit-for-bit.
    outputs: Vec<(u64, u64)>,
}

/// Deterministic input data: an LCG stream mapped into `[lo, hi)`.
fn lcg_fill(seed: u64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let unit = ((state >> 40) as f32) / ((1u64 << 24) as f32);
            lo + unit * (hi - lo)
        })
        .collect()
}

/// SplitMix64: one well-mixed word from a composite index.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn trial_seed(campaign: u64, arm: usize, kernel: usize, rate: usize, trial: usize) -> u64 {
    mix(campaign
        ^ mix(arm as u64 ^ mix((kernel as u64) << 16 ^ mix((rate as u64) << 32 ^ trial as u64))))
}

/// Builds the seven paper kernels at campaign scale (small enough that a
/// full sweep stays fast, large enough that every instruction slot and
/// functional-unit path is exercised).
fn kernel_cases(cfg: &ArchConfig) -> Vec<KernelCase> {
    let mut cases = Vec::new();

    // k-Means assignment: distances to 4 centroids, keep the nearest.
    {
        let kernel = DistanceKernel {
            name: "kmeans",
            features: 8,
            hot_rows: 4,
            cold_rows: 32,
            post: DistancePost::Sort { k: 1 },
        };
        let plan = DistancePlan { hot_dram: 0, cold_dram: 1024, out_dram: 4096 };
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.hot_dram, &lcg_fill(101, 4 * 8, -1.0, 1.0));
        dram.write_f32(plan.cold_dram, &lcg_fill(102, 32 * 8, -1.0, 1.0));
        let program = kernel.generate(cfg, &plan).expect("kmeans generates");
        cases.push(KernelCase {
            name: "kmeans",
            program,
            dram,
            outputs: vec![(plan.out_dram, 32 * 2)],
        });
    }

    // k-NN: 3 nearest of 16 references for each of 16 queries.
    {
        let kernel = DistanceKernel {
            name: "knn",
            features: 8,
            hot_rows: 16,
            cold_rows: 16,
            post: DistancePost::Sort { k: 3 },
        };
        let plan = DistancePlan { hot_dram: 0, cold_dram: 1024, out_dram: 4096 };
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.hot_dram, &lcg_fill(201, 16 * 8, -1.0, 1.0));
        dram.write_f32(plan.cold_dram, &lcg_fill(202, 16 * 8, -1.0, 1.0));
        let program = kernel.generate(cfg, &plan).expect("knn generates");
        cases.push(KernelCase {
            name: "knn",
            program,
            dram,
            outputs: vec![(plan.out_dram, 16 * 6)],
        });
    }

    // SVM prediction: RBF kernel values against 8 support vectors, then
    // the alpha-weighted sum.
    {
        let kernel = SvmPredict { features: 8, support_vectors: 8, queries: 16 };
        let plan = SvmPredictPlan {
            sv_dram: 0,
            query_dram: 1024,
            kernel_dram: 2048,
            alpha_dram: 3072,
            out_dram: 4096,
        };
        let mut dram = Dram::new(1 << 15);
        // Small feature scale keeps exp(-d) in the interpolator's sweet
        // spot.
        dram.write_f32(plan.sv_dram, &lcg_fill(301, 8 * 8, 0.0, 0.5));
        dram.write_f32(plan.query_dram, &lcg_fill(302, 16 * 8, 0.0, 0.5));
        dram.write_f32(plan.alpha_dram, &lcg_fill(303, 8, -1.0, 1.0));
        let program = kernel.generate(cfg, &plan).expect("svm generates");
        cases.push(KernelCase { name: "svm", program, dram, outputs: vec![(plan.out_dram, 16)] });
    }

    // Linear/logistic regression prediction: theta . x through a sigmoid.
    {
        let kernel = BroadcastDot {
            name: "lr",
            width: 16,
            cold_rows: 32,
            activation: Some(NonLinearFn::Sigmoid),
        };
        let plan = BroadcastPlan { hot_dram: 0, cold_dram: 1024, out_dram: 4096 };
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.hot_dram, &lcg_fill(401, 16, -0.5, 0.5));
        dram.write_f32(plan.cold_dram, &lcg_fill(402, 32 * 16, -1.0, 1.0));
        let program = kernel.generate(cfg, &plan).expect("lr generates");
        cases.push(KernelCase { name: "lr", program, dram, outputs: vec![(plan.out_dram, 32)] });
    }

    // DNN forward pass: 8-8-4 MLP over a batch of 4.
    {
        let widths = vec![8usize, 8, 4];
        let batch = 4usize;
        let kernel = MlpForward { widths: widths.clone(), batch, activation: NonLinearFn::Sigmoid };
        let plan = MlpForwardPlan { weights: vec![0, 512], activations: vec![1024, 2048, 3072] };
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.weights[0], &lcg_fill(501, 8 * 9, -0.5, 0.5));
        dram.write_f32(plan.weights[1], &lcg_fill(502, 4 * 9, -0.5, 0.5));
        // Augmented activation rows: element 0 is the constant 1.0.
        for (l, &base) in plan.activations.iter().enumerate() {
            let aug = widths[l] + 1;
            for b in 0..batch {
                dram.write_f32(base + (b * aug) as u64, &[1.0]);
            }
        }
        let inputs = lcg_fill(503, batch * 8, -1.0, 1.0);
        for b in 0..batch {
            dram.write_f32(plan.activations[0] + (b * 9) as u64 + 1, &inputs[b * 8..(b + 1) * 8]);
        }
        let last = *plan.activations.last().unwrap();
        let program = kernel.generate(cfg, &plan).expect("dnn generates");
        cases.push(KernelCase {
            name: "dnn",
            program,
            dram,
            outputs: vec![(last, (batch * (widths[2] + 1)) as u64)],
        });
    }

    // Naive Bayes prediction: product-reduce the gathered likelihood
    // rows into posterior scores.
    {
        let kernel = NbPredictKernel { rows: 24, width: 9 };
        let plan = NbPredictPlan { rows_dram: 0, out_dram: 4096 };
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.rows_dram, &lcg_fill(601, 24 * 9, 0.3, 1.0));
        let program = kernel.generate(cfg, &plan).expect("nb generates");
        cases.push(KernelCase { name: "nb", program, dram, outputs: vec![(plan.out_dram, 24)] });
    }

    // Classification tree: a depth-4 walk over 16 instances.
    {
        let kernel = TreeWalkKernel { depth: 4, features: 6, instances: 16 };
        let plan = TreeWalkPlan { tree_dram: 0, instances_dram: 1024, states_dram: 4096 };
        let mut tree = HeapTree::new(4);
        for i in 0..HeapTree::level_start(3) {
            tree.set_split(i, i % 6, 0.3 + 0.1 * ((i % 4) as f32));
        }
        for (j, i) in (HeapTree::level_start(3)..HeapTree::level_start(3) + HeapTree::level_len(3))
            .enumerate()
        {
            tree.set_leaf(i, j % 4);
        }
        let mut dram = Dram::new(1 << 15);
        dram.write_f32(plan.tree_dram, tree.words());
        dram.write_f32(plan.instances_dram, &lcg_fill(701, 16 * 6, 0.0, 1.0));
        // States start zeroed (all walkers at the root): Dram is
        // zero-initialised.
        let program = kernel.generate(cfg, &plan).expect("ct generates");
        cases.push(KernelCase { name: "ct", program, dram, outputs: vec![(plan.states_dram, 16)] });
    }

    cases
}

/// The fault plan one trial runs with: buffer upsets at the base rate,
/// the other sites scaled down so a typical trial sees a handful of
/// events rather than a storm.
fn trial_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan {
        seed,
        buffer_upset_rate: rate,
        dma_corruption_rate: rate * 0.25,
        ifetch_corruption_rate: rate * 0.125,
        lane_fault_rate: rate * 0.25,
        lane_stuck_at: None,
        alu_fault_rate: rate * 0.25,
    }
}

/// Output regions of a finished run, as raw bits (`f32::to_bits`, so NaN
/// patterns compare exactly).
fn capture_outputs(dram: &Dram, outputs: &[(u64, u64)]) -> Vec<u32> {
    outputs
        .iter()
        .flat_map(|&(addr, elems)| {
            dram.read_f32(addr, elems as usize).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        })
        .collect()
}

fn run_clean(cfg: &ArchConfig, case: &KernelCase) -> (Vec<u32>, u64) {
    let mut dram = case.dram.clone();
    let mut accel = Accelerator::new(cfg.clone()).expect("paper config is valid");
    let report = accel.run(&case.program, &mut dram).expect("clean run succeeds");
    (capture_outputs(&dram, &case.outputs), report.stats.cycles)
}

fn classify(
    result: Result<pudiannao_accel::RunReport, ExecError>,
    dram: &Dram,
    case: &KernelCase,
    golden: &[u32],
) -> OutcomeCounts {
    let mut counts = OutcomeCounts::default();
    match result {
        Err(e) if e.is_fault_detection() => counts.detected += 1,
        Err(_) => counts.crash += 1,
        Ok(report) => {
            let fault = report.fault.expect("faults were enabled");
            if capture_outputs(dram, &case.outputs) == golden {
                if fault.corrected > 0 {
                    counts.corrected += 1;
                } else {
                    counts.masked += 1;
                }
            } else {
                counts.sdc += 1;
            }
        }
    }
    counts
}

/// The graceful-degradation scenario: a stuck-at lane 0 on the k-Means
/// kernel with detection + masking fitted must finish with
/// correct-within-tolerance outputs at a measurably higher cycle count.
fn degradation_json(cfg: &ArchConfig, seed: u64) -> Value {
    let case = &kernel_cases(cfg)[0];
    assert_eq!(case.name, "kmeans");
    let (golden_bits, baseline_cycles) = run_clean(cfg, case);
    let golden: Vec<f32> = golden_bits.iter().map(|&b| f32::from_bits(b)).collect();

    let mut accel = Accelerator::builder(cfg.clone())
        .faults(FaultConfig {
            plan: FaultPlan { lane_stuck_at: Some(0), ..FaultPlan::quiet(seed) },
            hardening: Hardening::secded(),
        })
        .build()
        .expect("paper config is valid");
    let mut dram = case.dram.clone();
    let report = accel.run(&case.program, &mut dram).expect("masked lane still completes");
    let fault = report.fault.expect("faults were enabled");
    let got: Vec<f32> =
        capture_outputs(&dram, &case.outputs).iter().map(|&b| f32::from_bits(b)).collect();
    let max_rel_err = got
        .iter()
        .zip(&golden)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0f32, f32::max);
    let ok =
        fault.lanes_masked == 1 && report.stats.cycles > baseline_cycles && max_rel_err <= 0.05;
    Value::object()
        .with("kernel", case.name)
        .with("lanes_masked", u64::from(fault.lanes_masked))
        .with("baseline_cycles", baseline_cycles)
        .with("degraded_cycles", report.stats.cycles)
        .with("fault_overhead_cycles", fault.overhead_cycles)
        .with("max_rel_err", f64::from(max_rel_err))
        .with("within_tolerance", ok)
}

/// Runs the campaign and returns `(json, per-arm totals)`. The JSON is a
/// pure function of `config` — byte-identical at any worker count.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> (Value, Vec<(&'static str, OutcomeCounts)>) {
    let cfg = ArchConfig::paper_default();
    let arms: [(&'static str, Hardening); 2] =
        [("unhardened", Hardening::default()), ("secded", Hardening::secded())];
    let cases = kernel_cases(&cfg);
    let goldens: Vec<Vec<u32>> = cases.iter().map(|c| run_clean(&cfg, c).0).collect();

    // One job per (arm, kernel, rate) cell; results come back in job
    // order, so serialisation below is scheduling-independent.
    struct Cell {
        arm: usize,
        kernel: usize,
        rate: usize,
    }
    let mut cells = Vec::new();
    for arm in 0..arms.len() {
        for kernel in 0..cases.len() {
            for rate in 0..config.rates.len() {
                cells.push(Cell { arm, kernel, rate });
            }
        }
    }
    let jobs: Vec<_> = cells
        .iter()
        .map(|cell| {
            let hardening = arms[cell.arm].1;
            let case = &cases[cell.kernel];
            let golden = &goldens[cell.kernel];
            let rate = config.rates[cell.rate];
            let seed = config.seed;
            let trials = config.trials;
            let cfg = &cfg;
            move || {
                let mut counts = OutcomeCounts::default();
                for trial in 0..trials {
                    let plan =
                        trial_plan(trial_seed(seed, cell.arm, cell.kernel, cell.rate, trial), rate);
                    let mut accel = Accelerator::builder(cfg.clone())
                        .faults(FaultConfig { plan, hardening })
                        .build()
                        .expect("paper config is valid");
                    let mut dram = case.dram.clone();
                    let result = accel.run(&case.program, &mut dram);
                    counts.add(&classify(result, &dram, case, golden));
                }
                counts
            }
        })
        .collect();
    let results = crate::parallel::run_indexed(jobs);

    let mut cell_json = Vec::new();
    let mut totals: Vec<(&'static str, OutcomeCounts)> =
        arms.iter().map(|&(name, _)| (name, OutcomeCounts::default())).collect();
    for (cell, counts) in cells.iter().zip(&results) {
        totals[cell.arm].1.add(counts);
        cell_json.push(
            Value::object()
                .with("arm", arms[cell.arm].0)
                .with("kernel", cases[cell.kernel].name)
                .with("rate", config.rates[cell.rate])
                .with("outcomes", counts.to_json()),
        );
    }

    let mut totals_json = Value::object();
    for (name, counts) in &totals {
        totals_json.set(*name, counts.to_json());
    }
    let json = Value::object()
        .with("seed", config.seed)
        .with("trials_per_cell", config.trials)
        .with("rates", Value::array(config.rates.iter().map(|&r| Value::from(r)).collect()))
        .with("kernels", Value::array(cases.iter().map(|c| Value::from(c.name)).collect()))
        .with("cells", Value::array(cell_json))
        .with("totals", totals_json)
        .with("degradation", degradation_json(&cfg, config.seed));
    (json, totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_well_spread() {
        let mut seen = std::collections::HashSet::new();
        for arm in 0..2 {
            for kernel in 0..7 {
                for rate in 0..3 {
                    for trial in 0..4 {
                        assert!(seen.insert(trial_seed(1, arm, kernel, rate, trial)));
                    }
                }
            }
        }
    }

    #[test]
    fn lcg_fill_is_deterministic_and_bounded() {
        let a = lcg_fill(7, 64, -1.0, 1.0);
        assert_eq!(a, lcg_fill(7, 64, -1.0, 1.0));
        assert_ne!(a, lcg_fill(8, 64, -1.0, 1.0));
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn all_seven_kernels_run_clean() {
        let cfg = ArchConfig::paper_default();
        let cases = kernel_cases(&cfg);
        let names: Vec<_> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names, ["kmeans", "knn", "svm", "lr", "dnn", "nb", "ct"]);
        for case in &cases {
            let (bits, cycles) = run_clean(&cfg, case);
            assert!(cycles > 0, "{}", case.name);
            assert!(!bits.is_empty(), "{}", case.name);
            // Clean runs are reproducible.
            assert_eq!(bits, run_clean(&cfg, case).0, "{}", case.name);
        }
    }

    #[test]
    fn ct_states_decode_to_reference_classes() {
        let cfg = ArchConfig::paper_default();
        let case = &kernel_cases(&cfg)[6];
        assert_eq!(case.name, "ct");
        let mut dram = case.dram.clone();
        let mut accel = Accelerator::new(cfg).unwrap();
        accel.run(&case.program, &mut dram).unwrap();
        let states = dram.read_f32(4096, 16);
        assert!(states.iter().all(|&s| TreeWalkKernel::decode_state(s).is_some()));
    }

    #[test]
    fn smoke_campaign_hits_every_interesting_outcome() {
        let (json, totals) = run_campaign(&CampaignConfig::smoke());
        let all: OutcomeCounts = {
            let mut acc = OutcomeCounts::default();
            for (_, c) in &totals {
                acc.add(c);
            }
            acc
        };
        assert_eq!(all.total(), 2 * 7 * 4); // arms x kernels x trials
        assert!(all.corrected > 0, "no SEC-DED correction: {all:?}");
        assert!(all.detected > 0, "no detection: {all:?}");
        assert!(all.sdc > 0, "no silent corruption: {all:?}");
        let degradation = json.get("degradation").unwrap();
        assert_eq!(degradation.get("within_tolerance"), Some(&Value::Bool(true)));
        // Determinism: the whole report reproduces byte-for-byte.
        let (again, _) = run_campaign(&CampaignConfig::smoke());
        assert_eq!(json.to_string_pretty(), again.to_string_pretty());
    }
}
