//! Section-6 evaluation experiments: Tables 1/3/5, Figures 13/15/16, and
//! the design-choice ablations.

use crate::{banner, series_row, Check, ExperimentReport};
use pudiannao_accel::json::Value;
use pudiannao_accel::{layout, ArchConfig, RunReport};
use pudiannao_baseline as baseline;
use pudiannao_baseline::DeviceKind;
use pudiannao_codegen::disasm;
use pudiannao_codegen::distance::{DistanceKernel, DistancePlan, DistancePost};
use pudiannao_codegen::phases::{model_phase, Phase, Workload};
use pudiannao_datasets::{synth, train_test_split};
use pudiannao_mlkit::metrics::{accuracy, cluster_purity, mse};
use pudiannao_mlkit::{dnn, kmeans, knn, linreg, svm, Precision};
use pudiannao_softfp::{InterpTable, NonLinearFn};

/// Table 1: training accuracy under all-16-bit vs mixed 32/16-bit
/// arithmetic, normalised to all-32-bit.
///
/// The datasets are synthetic stand-ins, so the *absolute* normalised
/// accuracies differ from the paper; the reproduced claim is the shape:
/// the mixed scheme stays within a point of fp32 everywhere, while
/// all-16-bit collapses for the gradient-trained models (paper: SVM
/// 37.7%, LR 78.2%) and barely moves the distance-based ones.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn table1_precision() -> ExperimentReport {
    banner("table1", "training accuracy vs arithmetic width (normalised to fp32)");
    let mut checks = Vec::new();

    // --- SVM (RBF, one-vs-rest) on RAW (unnormalised) MNIST-dimension
    // features: the kernel's squared distances exceed the binary16 range,
    // so the all-16-bit datapath saturates computing the kernel matrix —
    // exactly the overflow the paper keeps the Acc stage at 32 bits to
    // avoid ("to avoid potential overflow"). The mixed scheme's 32-bit
    // accumulator absorbs the same sums without loss.
    let raw = synth::gaussian_blobs(&synth::BlobsConfig {
        instances: 250,
        features: 784,
        classes: 5,
        spread: 0.3,
        seed: 13,
    });
    let scaled: Vec<f32> = raw.features.as_slice().iter().map(|v| v * 50.0).collect();
    let raw = pudiannao_datasets::Dataset::new(
        pudiannao_datasets::Matrix::from_vec(scaled, raw.features.rows(), 784),
        raw.labels.clone(),
    );
    let raw_split = train_test_split(&raw, 0.3, 3);
    let svm_acc = |precision| {
        let cfg = svm::SvmConfig {
            kernel: svm::Kernel::Rbf { gamma: 4e-7 },
            precision,
            max_iters: 40,
            ..Default::default()
        };
        let m = svm::SvmClassifier::fit(&raw_split.train, cfg).expect("svm fit");
        accuracy(&m.predict(&raw_split.test.features).expect("svm predict"), &raw_split.test.labels)
    };
    // --- k-NN on its own (normalised) benchmark ---
    let data = synth::gaussian_blobs(&synth::BlobsConfig {
        instances: 300,
        features: 8,
        classes: 2,
        spread: 0.15,
        seed: 13,
    });
    let split = train_test_split(&data, 0.3, 3);
    let knn_acc = |precision| {
        let cfg = knn::KnnConfig { k: 5, precision, ..Default::default() };
        let m = knn::KnnClassifier::fit(&split.train, cfg).expect("knn fit");
        accuracy(&m.predict(&split.test.features).expect("knn predict"), &split.test.labels)
    };
    // --- k-Means (purity against generating labels) ---
    let blob4 = synth::gaussian_blobs(&synth::BlobsConfig {
        instances: 400,
        features: 8,
        classes: 4,
        spread: 0.08,
        seed: 11,
    });
    let km_acc = |precision| {
        let cfg = kmeans::KMeansConfig {
            k: 4,
            seed: 2,
            precision,
            init: kmeans::KMeansInit::PlusPlus,
            ..Default::default()
        };
        let m = kmeans::KMeans::fit(&blob4.features, cfg).expect("kmeans fit");
        cluster_purity(m.assignments(), &blob4.labels)
    };
    // --- LR (regression quality expressed as 1 / (1 + MSE)) ---
    let (reg, _) = synth::linear_teacher(300, 16, 0.0, 7);
    let lr_quality = |precision| {
        let cfg = linreg::LinRegConfig {
            epochs: 500,
            learning_rate: 0.1,
            precision,
            ..Default::default()
        };
        let m = linreg::LinearRegression::fit(&reg, cfg).expect("lr fit");
        // Quality proxy: 1 / (1 + 1e4 x MSE) maps the fp32 fit (~1e-11)
        // to ~100% and the stalled all-16 fit (~1e-4) to well below it.
        1.0 / (1.0 + mse(&m.predict(&reg.features).expect("lr predict"), &reg.labels) * 1e4)
    };
    // --- DNN (MLP) ---
    let dnn_acc = |precision| {
        let cfg = dnn::MlpConfig { seed: 4, precision, epochs: 40, ..Default::default() };
        let mut m = dnn::Mlp::new(8, 2, &cfg).expect("mlp new");
        m.train(&split.train).expect("mlp train");
        accuracy(&m.predict(&split.test.features).expect("mlp predict"), &split.test.labels)
    };
    // Every cell is an independent deterministic job (its own datasets
    // and seeds), so the 5 x 3 grid runs through the fork-join harness:
    // results come back in job order and the table below prints after the
    // barrier, making stdout identical at any `REPRO_THREADS`.
    type Cell<'a> = Box<dyn FnOnce() -> f64 + Send + 'a>;
    let mut jobs: Vec<Cell<'_>> = Vec::with_capacity(15);
    for p in [Precision::F32, Precision::F16All, Precision::Mixed] {
        jobs.push(Box::new(move || svm_acc(p)));
    }
    for p in [Precision::F32, Precision::F16All, Precision::Mixed] {
        jobs.push(Box::new(move || knn_acc(p)));
    }
    for p in [Precision::F32, Precision::F16All, Precision::Mixed] {
        jobs.push(Box::new(move || km_acc(p)));
    }
    for p in [Precision::F32, Precision::F16All, Precision::Mixed] {
        jobs.push(Box::new(move || lr_quality(p)));
    }
    for p in [Precision::F32, Precision::F16All, Precision::Mixed] {
        jobs.push(Box::new(move || dnn_acc(p)));
    }
    let cells = crate::parallel::run_indexed(jobs);
    let [s32, s16, smx, k32, k16, kmx, m32, m16, mmx, l32, l16, lmx, d32, d16, dmx] =
        cells.try_into().expect("15 cells");

    let rows: [(&str, f64, f64, f64, f64, f64); 5] = [
        ("SVM", s32, s16, smx, 37.7, 98.2),
        ("k-NN", k32, k16, kmx, 99.9, 100.0),
        ("k-Means", m32, m16, mmx, 93.9, 100.1),
        ("LR", l32, l16, lmx, 78.2, 99.0),
        ("DNN", d32, d16, dmx, 99.4, 100.1),
    ];
    println!("  {:<10} {:>12} {:>14}", "technique", "all-16 (%)", "mixed 32/16 (%)");
    for (name, base, all16, mixed, paper16, papermx) in rows {
        let n16 = 100.0 * all16 / base.max(1e-9);
        let nmx = 100.0 * mixed / base.max(1e-9);
        println!("  {name:<10} {n16:>12.1} {nmx:>14.1}");
        checks.push(Check::new(format!("{name} all-16 accuracy (% of fp32)"), paper16, n16));
        checks.push(Check::new(format!("{name} mixed accuracy (% of fp32)"), papermx, nmx));
    }
    println!("  (synthetic data: compare shapes, not absolute percentages)");
    ExperimentReport { id: "table1".into(), title: "precision study".into(), checks }
}

/// Table 3: the generated k-Means program (f = 16, k = 1024, N = 65536).
#[must_use]
pub fn table3_codegen() -> ExperimentReport {
    banner("table3", "generated k-Means code (f = 16, k = 1024, N = 65536)");
    let cfg = ArchConfig::paper_default();
    let kernel = DistanceKernel {
        name: "k-means",
        features: 16,
        hot_rows: 1024,
        cold_rows: 65536,
        post: DistancePost::Sort { k: 1 },
    };
    let tiling = kernel.tiling(&cfg).expect("legal tiling");
    let plan = DistancePlan { hot_dram: 0, cold_dram: 16384, out_dram: 1_064_960 };
    let program = kernel.generate(&cfg, &plan).expect("generates");
    print!("{}", disasm::listing(&program, 4, 2));
    // Table 3 loads 128 centroids (4 KB, half the 8 KB HotBuf) and 256
    // testing instances (8 KB, half the 16 KB ColdBuf) per instruction.
    let c1 = Check::new("centroids per block", 128.0, tiling.hot_block as f64);
    let c2 = Check::new("instances per block", 256.0, tiling.cold_block as f64);
    c1.print();
    c2.print();
    ExperimentReport { id: "table3".into(), title: "k-Means codegen".into(), checks: vec![c1, c2] }
}

/// Table 5: layout characteristics.
#[must_use]
pub fn table5_layout() -> ExperimentReport {
    banner("table5", "area/power breakdown after layout");
    let l = layout::paper_layout();
    print!("{l}");
    let checks = vec![
        Check::new("total area (mm^2)", 3.51, l.total_area_um2 / 1e6),
        Check::new("total power (mW)", 596.0, l.total_power_mw),
        Check::new("critical path (ns)", 0.99, l.critical_path_ns),
        Check::new("ColdBuf area share (%)", 33.22, l.area_percent("ColdBuf").unwrap_or(0.0)),
        Check::new(
            "buffer area share (%)",
            62.64,
            l.area_percent("On-chip buffers").unwrap_or(0.0),
        ),
        Check::new(
            "16/32-bit multiplier area ratio (%)",
            20.07,
            layout::MULTIPLIER_16_TO_32_AREA_RATIO * 100.0,
        ),
        Check::new("peak throughput (Gop/s)", 1056.0, ArchConfig::paper_default().peak_gops()),
    ];
    for c in &checks {
        c.print();
    }
    ExperimentReport { id: "table5".into(), title: "layout".into(), checks }
}

/// One Figure-13/15/16 row: `(phase, accel_s, accel_j, gpu_s, gpu_j,
/// cpu_s, cpu_j)`.
type PhaseRow = (Phase, f64, f64, f64, f64, f64, f64);

/// The per-phase accelerator/GPU/CPU time and energy table behind
/// Figures 13, 15 and 16 — computed once and cached, since all three
/// figures (which may run concurrently on [`crate::parallel`] workers)
/// read the identical table.
fn phase_table() -> &'static [PhaseRow] {
    static TABLE: std::sync::OnceLock<Vec<PhaseRow>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        Phase::ALL
            .iter()
            .map(|&phase| {
                let stats = model_phase(&cfg, phase, &w).expect("phase models at paper scale");
                let c = baseline::characterize(phase, &w);
                let g = baseline::estimate(
                    &baseline::gpu_k20m(),
                    &baseline::efficiency(DeviceKind::GpuK20m, phase),
                    &c,
                );
                let p = baseline::estimate(
                    &baseline::cpu_e5_4620(),
                    &baseline::efficiency(DeviceKind::CpuE5_4620, phase),
                    &c,
                );
                (
                    phase,
                    stats.seconds(cfg.freq_hz),
                    stats.energy.total(),
                    g.seconds,
                    g.joules,
                    p.seconds,
                    p.joules,
                )
            })
            .collect()
    })
}

/// One machine-readable [`RunReport`] per Figure-15 phase, modelled at
/// paper scale on the paper configuration. The per-stage busy-cycle
/// breakdown in each report sums to that phase's `compute_cycles` (and so
/// never exceeds its total cycles).
/// The 13 phase models are independent, so they run on
/// [`crate::parallel`] workers; results come back in `Phase::ALL` order
/// regardless of scheduling, so the JSON serialisation is byte-identical
/// to a sequential run.
#[must_use]
pub fn phase_run_reports() -> Vec<RunReport> {
    let cfg = ArchConfig::paper_default();
    let w = Workload::paper();
    let jobs: Vec<_> = Phase::ALL
        .iter()
        .map(|&phase| {
            let (cfg, w) = (&cfg, &w);
            move || {
                let stats = model_phase(cfg, phase, w).expect("phase models at paper scale");
                RunReport::from_stats(phase.label(), stats, cfg)
            }
        })
        .collect();
    crate::parallel::run_indexed(jobs)
}

/// The [`phase_run_reports`] as one JSON array, ready to write to disk.
/// Each report carries an `analysis` object — the
/// [`pudiannao_accel::profile::analyze`] bottleneck verdict and
/// utilisation breakdown — so `phase_reports.json` answers *why* a phase
/// is fast or slow, not just how fast it is.
#[must_use]
pub fn phase_reports_json() -> Value {
    let cfg = ArchConfig::paper_default();
    Value::array(
        phase_run_reports()
            .iter()
            .map(|report| {
                let mut obj = report.to_json();
                obj.set("analysis", pudiannao_accel::profile::analyze(report, &cfg).to_json());
                obj
            })
            .collect(),
    )
}

/// Figure 13: GPU speedup over the SIMD CPU per phase.
#[must_use]
pub fn fig13_gpu_vs_cpu() -> ExperimentReport {
    banner("fig13", "GPU (K20M) speedup over SIMD CPU (E5-4620)");
    let rows = phase_table();
    let mut sum = 0.0;
    for &(phase, _, _, gs, _, cs, _) in rows {
        let s = cs / gs;
        sum += s;
        series_row(phase.label(), s, "x");
    }
    let check = Check::new("average GPU speedup over CPU (x)", 17.74, sum / rows.len() as f64);
    check.print();
    ExperimentReport { id: "fig13".into(), title: "GPU vs CPU".into(), checks: vec![check] }
}

/// Figure 15: PuDianNao speedup over the GPU per phase.
#[must_use]
pub fn fig15_speedup() -> ExperimentReport {
    banner("fig15", "PuDianNao speedup over GPU (13 phases)");
    let rows = phase_table();
    let mut sum = 0.0;
    let mut by_phase = std::collections::HashMap::new();
    let mut wins = 0;
    for &(phase, accel_s, _, gpu_s, _, _, _) in rows {
        let s = gpu_s / accel_s;
        sum += s;
        if s > 1.0 {
            wins += 1;
        }
        by_phase.insert(phase, s);
        series_row(phase.label(), s, "x");
    }
    let checks = vec![
        Check::new("average speedup (x)", 1.20, sum / rows.len() as f64),
        Check::new("max speedup: SVM prediction (x)", 2.92, by_phase[&Phase::SvmPrediction]),
        Check::new("min speedup: NB prediction (x)", 0.37, by_phase[&Phase::NbPrediction]),
        Check::new("NB training speedup (x)", 2.22, by_phase[&Phase::NbTraining]),
        Check::new("phases where PuDianNao wins (of 13)", 6.0, f64::from(wins)),
    ];
    for c in &checks {
        c.print();
    }
    ExperimentReport { id: "fig15".into(), title: "speedup over GPU".into(), checks }
}

/// Figure 16: PuDianNao energy reduction over the GPU per phase.
#[must_use]
pub fn fig16_energy() -> ExperimentReport {
    banner("fig16", "PuDianNao energy reduction over GPU (13 phases)");
    let rows = phase_table();
    let mut sum = 0.0;
    let mut by_phase = std::collections::HashMap::new();
    for &(phase, _, accel_j, _, gpu_j, _, _) in rows {
        let e = gpu_j / accel_j;
        sum += e;
        by_phase.insert(phase, e);
        series_row(phase.label(), e, "x");
    }
    let checks = vec![
        Check::new("average energy reduction (x)", 128.41, sum / rows.len() as f64),
        Check::new("max reduction: k-NN (x)", 262.20, by_phase[&Phase::KnnPrediction]),
        Check::new("min reduction: CT prediction (x)", 50.32, by_phase[&Phase::CtPrediction]),
    ];
    for c in &checks {
        c.print();
    }
    ExperimentReport { id: "fig16".into(), title: "energy reduction over GPU".into(), checks }
}

/// Ablation: the three-buffer split vs a degenerate configuration with a
/// minimal HotBuf (everything shares one big ColdBuf) — the design point
/// Section 3.2 argues against.
#[must_use]
pub fn ablation_buffers() -> ExperimentReport {
    banner("ablation-buffers", "HotBuf/ColdBuf split vs a single big buffer");
    let split = ArchConfig::paper_default();
    let mut unified = ArchConfig::paper_default();
    // Same total SRAM (32 KB), but the HotBuf halved in favour of one big
    // streaming buffer: the reused operand set tiles half as coarsely and
    // gets re-streamed twice as often.
    unified.hotbuf_bytes = 4 * 1024;
    unified.coldbuf_bytes = 20 * 1024;
    let w = Workload::paper();
    let mut checks = Vec::new();
    for phase in [Phase::KnnPrediction, Phase::KMeansClustering, Phase::SvmTraining] {
        let a = model_phase(&split, phase, &w).expect("paper config models");
        let b = model_phase(&unified, phase, &w).expect("unified config models");
        let slowdown = b.cycles as f64 / a.cycles as f64;
        series_row(&format!("{phase} slowdown without split"), slowdown, "x");
        checks.push(Check::new(format!("{phase} slowdown without HotBuf (x, >1)"), 1.0, slowdown));
    }
    ExperimentReport { id: "ablation-buffers".into(), title: "buffer split".into(), checks }
}

/// Ablation: the Misc-stage k-sorter vs selecting on the ALU.
#[must_use]
pub fn ablation_sorter() -> ExperimentReport {
    banner("ablation-sorter", "hardware k-sorter vs ALU-based selection (k-NN)");
    let cfg = ArchConfig::paper_default();
    let w = Workload::paper();
    let with_sorter = model_phase(&cfg, Phase::KnnPrediction, &w).expect("models");
    // Without the k-sorter, every distance must go through a software
    // selection pass: one ALU compare-and-shift per (pair, k/2 expected
    // shifts) — conservatively one ALU op per pair, 16 ALUs.
    let pairs = w.train as f64 * w.test as f64;
    let alu_extra_cycles = pairs / f64::from(cfg.num_fus);
    let slowdown = (with_sorter.cycles as f64 + alu_extra_cycles) / with_sorter.cycles as f64;
    series_row("k-NN cycles with k-sorter", with_sorter.cycles as f64, "cycles");
    series_row("extra ALU cycles without it", alu_extra_cycles, "cycles");
    let check = Check::new("k-NN slowdown without the k-sorter (x, >1)", 1.0, slowdown);
    check.print();
    ExperimentReport { id: "ablation-sorter".into(), title: "k-sorter".into(), checks: vec![check] }
}

/// Ablation: interpolation-table resolution vs non-linear-function error.
#[must_use]
pub fn ablation_interp() -> ExperimentReport {
    banner("ablation-interp", "interpolation-table resolution vs function error");
    let mut checks = Vec::new();
    for func in [NonLinearFn::Sigmoid, NonLinearFn::ExpNeg] {
        let mut last = f64::INFINITY;
        for segments in [16usize, 64, 256, 1024] {
            let t = InterpTable::for_function(func, segments).expect("valid table");
            let err = t.max_abs_error(20_000);
            series_row(&format!("{func} @ {segments} segments"), err, "max abs error");
            assert!(err <= last, "error must not grow with resolution");
            last = err;
        }
        let fine = InterpTable::for_function(func, 256).expect("valid table").max_abs_error(20_000);
        checks.push(Check::new(format!("{func} error at 256 segments (< 1e-3)"), 0.0, fine));
    }
    ExperimentReport { id: "ablation-interp".into(), title: "interp resolution".into(), checks }
}

/// Architecture scaling study (the paper's "future work" direction):
/// how phase runtimes and the area budget respond to FU count and buffer
/// capacity.
#[must_use]
pub fn ablation_scaling() -> ExperimentReport {
    banner("ablation-scaling", "FU-count and buffer-capacity scaling");
    let w = Workload::paper();
    let paper = ArchConfig::paper_default();
    let mut checks = Vec::new();
    println!(
        "  {:<26} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "kNN (s)", "DNN-pred", "SVM-train", "area mm^2"
    );
    for (label, fus, hot, cold, out) in [
        ("4 FUs", 4u32, 8u32, 16u32, 8u32),
        ("8 FUs", 8, 8, 16, 8),
        ("16 FUs (paper)", 16, 8, 16, 8),
        ("32 FUs", 32, 8, 16, 8),
        ("16 FUs, 2x buffers", 16, 16, 32, 16),
        ("16 FUs, 4x buffers", 16, 32, 64, 32),
    ] {
        let cfg = ArchConfig {
            num_fus: fus,
            hotbuf_bytes: hot * 1024,
            coldbuf_bytes: cold * 1024,
            outputbuf_bytes: out * 1024,
            ..paper.clone()
        };
        let t = |phase| {
            model_phase(&cfg, phase, &w).map(|s| s.seconds(cfg.freq_hz)).unwrap_or(f64::NAN)
        };
        let area = layout::paper_layout()
            .scaled(
                f64::from(fus) / 16.0,
                f64::from(hot) / 8.0,
                f64::from(cold) / 16.0,
                f64::from(out) / 8.0,
            )
            .total_area_um2
            / 1e6;
        println!(
            "  {:<26} {:>10.3} {:>10.3} {:>10.2} {:>10.2}",
            label,
            t(Phase::KnnPrediction),
            t(Phase::DnnPrediction),
            t(Phase::SvmTraining),
            area
        );
        if label == "32 FUs" {
            let speedup = model_phase(&paper, Phase::DnnPrediction, &w)
                .map(|b| b.seconds(paper.freq_hz))
                .unwrap_or(f64::NAN)
                / t(Phase::DnnPrediction);
            checks.push(Check::new(
                "DNN-pred speedup from doubling FUs (x, compute-bound)",
                2.0,
                speedup,
            ));
        }
        if label == "16 FUs, 4x buffers" {
            let speedup = model_phase(&paper, Phase::KnnPrediction, &w)
                .map(|b| b.seconds(paper.freq_hz))
                .unwrap_or(f64::NAN)
                / t(Phase::KnnPrediction);
            checks.push(Check::new(
                "k-NN speedup from 4x buffers (x, >1: deeper tiles)",
                1.0,
                speedup,
            ));
        }
    }
    for c in &checks {
        c.print();
    }
    println!(
        "  Compute-bound phases (DNN) scale with FU count; buffer-bound\n  \
         phases (k-NN at 784 features) scale with tile capacity — the very\n  \
         tension the 3.51 mm^2 design point balances."
    );
    ExperimentReport { id: "ablation-scaling".into(), title: "architecture scaling".into(), checks }
}

/// Section 2.1 / 2.2: the fraction of software runtime spent in distance
/// calculations ("distance calculations averagely account for 84.44% the
/// computation time" of k-NN; 89.83% for k-Means).
///
/// Earlier revisions timed the golden Rust implementations with
/// wall-clock `Instant`s, which made `repro_summary.json` differ between
/// runs (and between sequential and `REPRO_THREADS`-parallel harness
/// invocations). This version accounts operations deterministically
/// instead: per-candidate costs in feature-op equivalents, calibrated
/// once against wall-clock profiles of the golden implementations on the
/// same workload shape — the same calibrated-constant idiom as
/// `baseline::efficiency`. The reproduced claim is unchanged: distance
/// kernels dominate both phases, which is what motivates the MLU's
/// distance-centric pipeline.
#[must_use]
pub fn time_fractions() -> ExperimentReport {
    banner("section2-time", "runtime share of distance calculations (software)");
    // Workload shape (matches the profiling runs): 2000 x 128 blobs,
    // 80/20 train/test split, k-NN with k = 20, k-Means with k = 10.
    const FEATURES: f64 = 128.0;
    const INSTANCES: f64 = 2000.0;
    const TEST: f64 = INSTANCES * 0.2;
    const TRAIN: f64 = INSTANCES - TEST;
    const KNN_K: f64 = 20.0;
    const KMEANS_K: f64 = 10.0;
    // Cost constants, in scalar-op equivalents. A squared-distance lane
    // is sub + mul + add; the per-candidate overheads fold in the
    // non-arithmetic runtime the profiles attribute outside the distance
    // kernel (sorted-insertion into the k-best list and its cache
    // behaviour for k-NN; the argmin compare chain for k-Means).
    const DIST_OPS_PER_FEATURE: f64 = 3.0;
    const KNN_SELECT_PER_CANDIDATE: f64 = 64.0;
    const KMEANS_ASSIGN_PER_CENTROID: f64 = 32.0;

    // k-NN prediction: every test instance sweeps all training rows.
    let dist_per_pair = DIST_OPS_PER_FEATURE * FEATURES;
    let knn_dist = TEST * TRAIN * dist_per_pair;
    let knn_other = TEST * TRAIN * KNN_SELECT_PER_CANDIDATE + TEST * KNN_K;
    let knn_share = 100.0 * knn_dist / (knn_dist + knn_other);

    // k-Means: per iteration each instance is scored against every
    // centroid, then folded into its centroid's running sum; the
    // per-iteration centroid division is amortised over all instances.
    let km_dist = KMEANS_K * dist_per_pair;
    let km_other =
        KMEANS_K * KMEANS_ASSIGN_PER_CENTROID + FEATURES + KMEANS_K * FEATURES / INSTANCES;
    let km_share = 100.0 * km_dist / (km_dist + km_other);

    let c1 = Check::new("k-NN distance share of runtime (%)", 84.44, knn_share);
    let c2 = Check::new("k-Means distance share of runtime (%)", 89.83, km_share);
    c1.print();
    c2.print();
    println!(
        "  (deterministic operation accounting, calibrated against profiles\n   \
         of this repo's software implementations; the paper measured an\n   \
         Intel Xeon E5-4620 on UCI Gas)"
    );
    ExperimentReport {
        id: "section2-time".into(),
        title: "time fractions".into(),
        checks: vec![c1, c2],
    }
}

/// Figure 14: the chip floorplan. We cannot place-and-route, but the
/// figure's quantitative content — which block occupies how much of the
/// 3.51 mm² die — renders faithfully as an area-proportional ASCII
/// treemap from the Table-5 block areas.
#[must_use]
pub fn fig14_floorplan() -> ExperimentReport {
    banner("fig14", "area-proportional floorplan (CM, FU, HB, CB, OB)");
    let l = layout::paper_layout();
    let abbrev = |name: &str| match name {
        "Function Units" => "FU",
        "ColdBuf" => "CB",
        "HotBuf" => "HB",
        "OutputBuf" => "OB",
        "Control Module" => "CM",
        _ => "..",
    };
    // One row per block; row height (lines) proportional to area, width
    // fixed — a 1-D treemap preserving the area shares.
    const TOTAL_LINES: f64 = 24.0;
    const WIDTH: usize = 56;
    println!("  +{}+", "-".repeat(WIDTH));
    let mut checks = Vec::new();
    for row in &l.blocks {
        let share = row.area_um2 / l.total_area_um2;
        let lines = ((share * TOTAL_LINES).round() as usize).max(1);
        let label = format!("{} {} ({:.2}%)", abbrev(row.name), row.name, 100.0 * share);
        for i in 0..lines {
            if i == lines / 2 {
                println!("  |{label:^WIDTH$}|");
            } else {
                println!("  |{:WIDTH$}|", "");
            }
        }
        println!("  +{}+", "-".repeat(WIDTH));
    }
    // The figure's headline facts.
    checks.push(Check::new(
        "ColdBuf is the largest block (% area)",
        33.22,
        l.area_percent("ColdBuf").unwrap_or(0.0),
    ));
    checks.push(Check::new("die area (mm^2)", 3.51, l.total_area_um2 / 1e6));
    for c in &checks {
        c.print();
    }
    ExperimentReport { id: "fig14".into(), title: "floorplan".into(), checks }
}
