//! The profiler reporting pipeline: a traced Figure-15-representative
//! phase for the timeline export, the per-phase bottleneck summary, and
//! the benchmark-history records behind the perf-regression gate.
//!
//! Three consumers sit on top:
//!
//! - the `profile` binary writes `trace_timeline.json` (Chrome Trace
//!   Event JSON from [`pudiannao_accel::profile::chrome_trace`]) and
//!   `phase_reports.json`, and prints the [`summary`] table;
//! - the `perf_diff` binary appends [`history_record`] lines to
//!   `BENCH_history.jsonl` and diffs the current run against the last
//!   recorded one ([`diff_records`]), failing on any per-phase cycle or
//!   energy regression beyond [`REGRESSION_THRESHOLD_PCT`];
//! - `scripts/check.sh --profile` / `--perf-gate` pin both outputs.
//!
//! Everything here is a pure function of the built-in workloads and the
//! paper configuration: no wall-clock, no randomness, so every output is
//! byte-identical at any `REPRO_THREADS` setting.

use pudiannao_accel::json::Value;
use pudiannao_accel::profile::analyze;
use pudiannao_accel::{Accelerator, ArchConfig, Dram, Program, RunReport, TraceConfig};
use pudiannao_codegen::disasm;
use pudiannao_codegen::distance::{DistanceKernel, DistancePlan, DistancePost};

/// Version stamp on every `BENCH_history.jsonl` line; bump when the
/// record shape changes so [`diff_records`] refuses to compare across
/// incompatible schemas.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// Per-phase regression tolerance (percent) for cycles and energy.
pub const REGRESSION_THRESHOLD_PCT: f64 = 2.0;

/// A functionally executed, fully traced run of a Figure-15-representative
/// phase: the k-Means distance kernel (Table 3's program shape) at a
/// scale small enough to execute every MAC, with the event ring sized to
/// hold the whole run.
pub struct TracedPhase {
    /// The configuration the run was measured on (the paper point).
    pub config: ArchConfig,
    /// The generated program.
    pub program: Program,
    /// One disassembly line per instruction ([`disasm::line`]), used to
    /// label the timeline spans.
    pub labels: Vec<String>,
    /// The traced report ([`RunReport::trace`] is always `Some`).
    pub report: RunReport,
}

/// Generates, executes and traces the scaled k-Means distance phase.
///
/// The full-paper-scale phases are analytic models (their operands are
/// symbolic DRAM addresses), so the timeline comes from this functional
/// stand-in: 64 centroids against 2048 streamed instances, 16 features —
/// the same resident-HotBuf / ping-pong-ColdBuf pattern as Table 3,
/// eight instructions long.
///
/// # Panics
///
/// Only if the built-in kernel stops generating or executing — a bug,
/// not an input condition.
#[must_use]
pub fn traced_phase() -> TracedPhase {
    let config = ArchConfig::paper_default();
    let kernel = DistanceKernel {
        name: "k-means",
        features: 16,
        hot_rows: 64,
        cold_rows: 2048,
        post: DistancePost::Sort { k: 1 },
    };
    let plan = DistancePlan { hot_dram: 0, cold_dram: 16_384, out_dram: 500_000 };
    let program = kernel.generate(&config, &plan).expect("built-in kernel generates");
    let labels: Vec<String> = program.instructions().iter().map(disasm::line).collect();

    let mut dram = Dram::new(1 << 20);
    // Deterministic operand fill (no RNG): smooth values in [0, 1).
    let fill = |dram: &mut Dram, base: u64, rows: usize| {
        for r in 0..rows {
            let row: Vec<f32> = (0..16).map(|c| ((r * 31 + c * 7) % 97) as f32 / 97.0).collect();
            dram.write_f32(base + (r * 16) as u64, &row);
        }
    };
    fill(&mut dram, plan.hot_dram, 64);
    fill(&mut dram, plan.cold_dram, 2048);

    let mut accel = Accelerator::builder(config.clone())
        .trace(TraceConfig::full())
        .build()
        .expect("paper config is valid");
    let report = accel.run(&program, &mut dram).expect("built-in kernel executes");
    assert!(report.trace.is_some(), "traced run carries a trace");
    TracedPhase { config, program, labels, report }
}

/// The human-readable bottleneck summary: one row per Figure-15 phase
/// with the verdict and the utilisation breakdown behind it, one
/// greppable `[profile] <phase> <verdict>` line per phase, and the
/// traced run's `events_dropped` count (a non-zero count means the
/// exported timeline is truncated).
#[must_use]
pub fn summary(reports: &[RunReport], config: &ArchConfig, events_dropped: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<10} {:<22} {:>8} {:>10} {:>9} {:>7}\n",
        "phase", "verdict", "fu-util", "dma-stall", "reconfig", "fault"
    ));
    let mut lines = String::new();
    for report in reports {
        let a = analyze(report, config);
        let label = report.label.as_deref().unwrap_or("?");
        out.push_str(&format!(
            "  {:<10} {:<22} {:>8.3} {:>10.3} {:>9.3} {:>7.3}\n",
            label,
            a.verdict.name(),
            a.fu_utilization,
            a.dma_stall_fraction,
            a.dma_reconfig_fraction,
            a.fault_overhead_fraction,
        ));
        lines.push_str(&format!("[profile] {} {}\n", label, a.verdict.name()));
    }
    out.push_str(&lines);
    out.push_str(&format!("[profile] events_dropped {events_dropped}\n"));
    out
}

/// One `BENCH_history.jsonl` line: the schema version, the configuration
/// fingerprint, and each Figure-15 phase's modelled cycles and energy.
/// Deliberately excludes anything non-deterministic (timestamps,
/// wall-clock, host details), so a record depends only on the model.
#[must_use]
pub fn history_record() -> Value {
    let mut record = record_from_reports(&crate::evaluation::phase_run_reports());
    record.set("serve", serve_sweep_points());
    record.set("chaos", chaos_headline());
    record.set("metrics", metrics_headline());
    record
}

/// The serving-layer half of a history record: the pinned 1/2/4/8-shard
/// scaling sweep from `pudiannao_serve` ([`pudiannao_serve::gate_sweep`]),
/// one point per shard count.
fn serve_sweep_points() -> Value {
    let mut points = Value::array(Vec::new());
    for p in pudiannao_serve::gate_sweep() {
        points.push(
            Value::object()
                .with("shards", p.shards as u64)
                .with("throughput_rps", p.throughput_rps)
                .with("p99_ns", p.p99_ns)
                .with("util_permille", p.util_permille),
        );
    }
    points
}

/// The resilience headline riding each history record: the mid-intensity
/// smoke chaos cell (2k requests of the gate shape on the widest sweep
/// fleet), undefended vs fully defended, as overall and per-tier SLO
/// attainment in per-mille. Small enough to run on every `--record`,
/// pinned enough that a defence regression moves it.
fn chaos_headline() -> Value {
    use pudiannao_serve::sweep::{chaos_fleet, defense_arm, gate_generator, CHAOS_SEED};
    use pudiannao_serve::{serve, serve_resilient, ChaosConfig, GeneratorConfig, Priority};
    let gen = GeneratorConfig { requests: 2_000, ..gate_generator() };
    let fleet = chaos_fleet();
    let p99 = serve(&fleet, &gen).p99_ns;
    let chaos = ChaosConfig::intensity(CHAOS_SEED, 1);
    let mut out = Value::object().with("intensity", "mid").with("baseline_p99_ns", p99);
    for arm in ["none", "full"] {
        let report = serve_resilient(&fleet, &gen, &chaos, &defense_arm(arm, p99));
        let res = report.resilience.as_ref().expect("chaos cells are resilient runs");
        let mut tiers = Value::object();
        for p in Priority::ALL {
            tiers.set(p.label(), res.tiers[p.index()].slo_met_permille);
        }
        out.set(
            arm,
            Value::object()
                .with("slo_overall_permille", res.overall_slo_permille())
                .with("slo_tiers_permille", tiers),
        );
    }
    out
}

/// The observability headline riding each history record: the windowed
/// latency metrics of a 2k-request gate-shape baseline run on the widest
/// sweep fleet (metrics on, tracing off, chaos off). The windowed p99
/// maximum is the burst-sensitive tail signal a whole-run p99 smooths
/// away — a batching or admission change that only hurts during bursts
/// moves this number first.
fn metrics_headline() -> Value {
    use pudiannao_serve::sweep::{chaos_fleet, gate_generator};
    use pudiannao_serve::{
        serve_observed, ChaosConfig, Defense, GeneratorConfig, MetricsConfig, ObserveConfig,
    };
    let gen = GeneratorConfig { requests: 2_000, ..gate_generator() };
    let observe = ObserveConfig { trace: None, metrics: Some(MetricsConfig::default()) };
    let report =
        serve_observed(&chaos_fleet(), &gen, &ChaosConfig::off(), &Defense::off(), &observe);
    let m =
        report.observability.as_ref().and_then(|o| o.metrics.as_ref()).expect("metrics were on");
    Value::object()
        .with("window_ns", m.window_ns)
        .with("overall_p99_ns", m.overall_p99_ns)
        .with("windowed_p99_max_ns", m.windowed_p99_max_ns)
        .with("windows", m.windows.len() as u64)
}

fn record_from_reports(reports: &[RunReport]) -> Value {
    let fingerprint = reports.first().map_or_else(String::new, |r| r.config_fingerprint.clone());
    let phases: Vec<Value> = reports
        .iter()
        .map(|r| {
            Value::object()
                .with("label", r.label.clone())
                .with("cycles", r.stats.cycles)
                .with("energy_joules", r.stats.energy.total())
        })
        .collect();
    Value::object()
        .with("schema_version", HISTORY_SCHEMA_VERSION)
        .with("config_fingerprint", fingerprint)
        .with("phases", Value::array(phases))
}

/// Returns `record` with every phase's cycle count inflated by `pct`
/// percent — the synthetic-regression hook behind `perf_diff
/// --inflate-cycles-pct`, used by the gate's self-check to prove a +5%
/// regression actually fails.
#[must_use]
pub fn with_inflated_cycles(record: &Value, pct: f64) -> Value {
    let phases: Vec<Value> = record
        .get("phases")
        .and_then(Value::as_array)
        .map(|phases| {
            phases
                .iter()
                .map(|p| {
                    let cycles = p.get("cycles").and_then(Value::as_u64).unwrap_or(0);
                    let inflated = (cycles as f64 * (1.0 + pct / 100.0)).round() as u64;
                    Value::object()
                        .with("label", p.get("label").and_then(Value::as_str).unwrap_or_default())
                        .with("cycles", inflated)
                        .with(
                            "energy_joules",
                            p.get("energy_joules").and_then(Value::as_f64).unwrap_or(0.0),
                        )
                })
                .collect()
        })
        .unwrap_or_default();
    let mut out = Value::object()
        .with("schema_version", record.get("schema_version").and_then(Value::as_u64).unwrap_or(0))
        .with(
            "config_fingerprint",
            record.get("config_fingerprint").and_then(Value::as_str).unwrap_or_default(),
        )
        .with("phases", Value::array(phases));
    // The synthetic slowdown targets phase cycles only; the serving
    // sweep, chaos headline and metrics headline ride along untouched so
    // the gate self-check diffs them cleanly.
    for key in ["serve", "chaos", "metrics"] {
        if let Some(section) = record.get(key) {
            out.set(key, section.clone());
        }
    }
    out
}

/// One phase's change between two history records, in percent.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDelta {
    /// The phase label.
    pub label: String,
    /// Cycle-count change, percent (positive = slower).
    pub cycles_pct: f64,
    /// Energy change, percent (positive = more joules).
    pub energy_pct: f64,
}

impl PhaseDelta {
    /// Whether either metric regressed beyond
    /// [`REGRESSION_THRESHOLD_PCT`].
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.cycles_pct > REGRESSION_THRESHOLD_PCT || self.energy_pct > REGRESSION_THRESHOLD_PCT
    }
}

fn pct_change(prev: f64, cur: f64) -> f64 {
    if prev == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cur - prev) / prev * 100.0
    }
}

/// Diffs two history records phase by phase.
///
/// # Errors
///
/// When the records are not comparable: mismatched schema versions,
/// mismatched configuration fingerprints (different hardware points must
/// never be diffed), or mismatched phase lists.
pub fn diff_records(prev: &Value, cur: &Value) -> Result<Vec<PhaseDelta>, String> {
    let schema = |v: &Value| v.get("schema_version").and_then(Value::as_u64);
    let (ps, cs) = (schema(prev), schema(cur));
    if ps != cs || cs != Some(HISTORY_SCHEMA_VERSION) {
        return Err(format!("schema mismatch: history {ps:?} vs current {cs:?}"));
    }
    fn fp(v: &Value) -> &str {
        v.get("config_fingerprint").and_then(Value::as_str).unwrap_or("")
    }
    if fp(prev) != fp(cur) {
        return Err(format!(
            "config fingerprint mismatch: history {:?} vs current {:?} — refusing to \
             compare different hardware points",
            fp(prev),
            fp(cur)
        ));
    }
    fn phases(v: &Value) -> Result<&[Value], String> {
        v.get("phases")
            .and_then(Value::as_array)
            .ok_or_else(|| "record has no phases array".to_owned())
    }
    let (pp, cp) = (phases(prev)?, phases(cur)?);
    if pp.len() != cp.len() {
        return Err(format!("phase count changed: {} vs {}", pp.len(), cp.len()));
    }
    let mut deltas = Vec::with_capacity(cp.len());
    for (p, c) in pp.iter().zip(cp) {
        let label = |v: &Value| v.get("label").and_then(Value::as_str).unwrap_or("?").to_owned();
        if label(p) != label(c) {
            return Err(format!("phase list changed: {:?} vs {:?}", label(p), label(c)));
        }
        let cycles = |v: &Value| v.get("cycles").and_then(Value::as_u64).unwrap_or(0) as f64;
        let energy = |v: &Value| v.get("energy_joules").and_then(Value::as_f64).unwrap_or(0.0);
        deltas.push(PhaseDelta {
            label: label(c),
            cycles_pct: pct_change(cycles(p), cycles(c)),
            energy_pct: pct_change(energy(p), energy(c)),
        });
    }
    Ok(deltas)
}

/// One shard-count's change in the serving scaling sweep, in percent.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeDelta {
    /// Fleet size this point was measured at.
    pub shards: u64,
    /// Throughput change, percent (positive = faster).
    pub throughput_pct: f64,
    /// p99 latency change, percent (positive = slower; informational).
    pub p99_pct: f64,
    /// Mean shard-utilisation change, percent (negative = shards idling
    /// more). `0.0` when either record predates the utilisation column.
    pub util_pct: f64,
}

impl ServeDelta {
    /// Whether serving throughput dropped — or per-shard utilisation
    /// collapsed — beyond [`REGRESSION_THRESHOLD_PCT`]. A utilisation
    /// drop at unchanged throughput means the fleet stopped scaling (the
    /// same work now needs more idle hardware). Latency is reported but
    /// not gated: an open-loop p99 legitimately moves when batching gets
    /// *better* (bigger batches trade tail latency for throughput).
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.throughput_pct < -REGRESSION_THRESHOLD_PCT || self.util_pct < -REGRESSION_THRESHOLD_PCT
    }
}

/// Diffs the serving scaling sweeps of two history records.
///
/// Returns an empty list when either record predates the serving layer
/// (no `serve` key) — older baselines stay comparable on phases alone.
///
/// # Errors
///
/// When both records carry a sweep but the shard counts differ.
pub fn diff_serve(prev: &Value, cur: &Value) -> Result<Vec<ServeDelta>, String> {
    fn sweep(v: &Value) -> Option<&[Value]> {
        v.get("serve").and_then(Value::as_array)
    }
    let (Some(ps), Some(cs)) = (sweep(prev), sweep(cur)) else {
        return Ok(Vec::new());
    };
    if ps.len() != cs.len() {
        return Err(format!("serve sweep size changed: {} vs {} points", ps.len(), cs.len()));
    }
    let mut deltas = Vec::with_capacity(cs.len());
    for (p, c) in ps.iter().zip(cs) {
        let shards = |v: &Value| v.get("shards").and_then(Value::as_u64).unwrap_or(0);
        if shards(p) != shards(c) {
            return Err(format!(
                "serve sweep shard counts changed: {} vs {}",
                shards(p),
                shards(c)
            ));
        }
        let rps = |v: &Value| v.get("throughput_rps").and_then(Value::as_f64).unwrap_or(0.0);
        let p99 = |v: &Value| v.get("p99_ns").and_then(Value::as_u64).unwrap_or(0) as f64;
        // Records written before the utilisation column skip that axis
        // cleanly (0% change) instead of faking a collapse to zero.
        let util = |v: &Value| v.get("util_permille").and_then(Value::as_u64);
        let util_pct = match (util(p), util(c)) {
            (Some(pu), Some(cu)) => pct_change(pu as f64, cu as f64),
            _ => 0.0,
        };
        deltas.push(ServeDelta {
            shards: shards(c),
            throughput_pct: pct_change(rps(p), rps(c)),
            p99_pct: pct_change(p99(p), p99(c)),
            util_pct,
        });
    }
    Ok(deltas)
}

/// How many per-mille points of chaos-headline SLO attainment a record
/// may lose before the gate fails. The model is deterministic, so any
/// movement is a code change; the slack only absorbs benign remodels.
pub const CHAOS_SLO_SLACK_POINTS: i64 = 10;

/// One defence arm's change in the chaos headline between two records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosDelta {
    /// Defence arm (`"none"` or `"full"`).
    pub arm: &'static str,
    /// Overall SLO attainment change in per-mille points
    /// (positive = more requests meeting their deadline).
    pub slo_points: i64,
}

impl ChaosDelta {
    /// Whether this arm's SLO attainment dropped beyond
    /// [`CHAOS_SLO_SLACK_POINTS`].
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.slo_points < -CHAOS_SLO_SLACK_POINTS
    }
}

/// Diffs the chaos headlines of two history records.
///
/// Returns an empty list when either record predates the chaos headline
/// (no `chaos` key) — older baselines stay comparable on phases and the
/// serving sweep alone.
///
/// # Errors
///
/// When both records carry a headline but an arm's attainment column is
/// missing or malformed.
pub fn diff_chaos(prev: &Value, cur: &Value) -> Result<Vec<ChaosDelta>, String> {
    let (Some(p), Some(c)) = (prev.get("chaos"), cur.get("chaos")) else {
        return Ok(Vec::new());
    };
    let slo = |v: &Value, arm: &str| -> Result<i64, String> {
        v.get(arm)
            .and_then(|a| a.get("slo_overall_permille"))
            .and_then(Value::as_u64)
            .map(|x| x as i64)
            .ok_or_else(|| format!("chaos headline is missing arm {arm:?}"))
    };
    let mut deltas = Vec::with_capacity(2);
    for arm in ["none", "full"] {
        deltas.push(ChaosDelta { arm, slo_points: slo(c, arm)? - slo(p, arm)? });
    }
    Ok(deltas)
}

/// How many percent the windowed-p99 headline may grow before the gate
/// fails. Windowed maxima are burstier than whole-run percentiles (one
/// window, not thousands of samples, sets the max), so the slack is
/// wider than [`REGRESSION_THRESHOLD_PCT`].
pub const METRICS_P99_SLACK_PCT: f64 = 5.0;

/// The metrics headline's change between two history records.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsDelta {
    /// Worst-window p99 change, percent (positive = slower bursts).
    pub windowed_p99_max_pct: f64,
    /// Whole-run p99 change, percent (informational — the scaling sweep
    /// already gates it per shard count).
    pub overall_p99_pct: f64,
}

impl MetricsDelta {
    /// Whether the worst-window p99 grew beyond [`METRICS_P99_SLACK_PCT`].
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.windowed_p99_max_pct > METRICS_P99_SLACK_PCT
    }
}

/// Diffs the metrics headlines of two history records.
///
/// Returns an empty list when either record predates the metrics
/// headline (no `metrics` key) — older baselines stay comparable on the
/// sections they do carry.
///
/// # Errors
///
/// When both records carry a headline but a column is missing or the
/// window size changed (windowed maxima are only comparable at the same
/// window).
pub fn diff_metrics(prev: &Value, cur: &Value) -> Result<Vec<MetricsDelta>, String> {
    let (Some(p), Some(c)) = (prev.get("metrics"), cur.get("metrics")) else {
        return Ok(Vec::new());
    };
    let field = |v: &Value, key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("metrics headline is missing {key:?}"))
    };
    let (pw, cw) = (field(p, "window_ns")?, field(c, "window_ns")?);
    if pw != cw {
        return Err(format!("metrics headline window changed: {pw} vs {cw} ns"));
    }
    Ok(vec![MetricsDelta {
        windowed_p99_max_pct: pct_change(
            field(p, "windowed_p99_max_ns")? as f64,
            field(c, "windowed_p99_max_ns")? as f64,
        ),
        overall_p99_pct: pct_change(
            field(p, "overall_p99_ns")? as f64,
            field(c, "overall_p99_ns")? as f64,
        ),
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::profile::{chrome_trace, validate_timeline, Bottleneck};

    #[test]
    fn traced_phase_yields_a_valid_labelled_timeline() {
        let traced = traced_phase();
        let trace = traced.report.trace.as_ref().unwrap();
        assert_eq!(trace.events_dropped, 0, "ring must hold the whole run");
        let doc = chrome_trace(&traced.config, &traced.program, trace, &traced.labels);
        let check = validate_timeline(&doc).unwrap();
        assert!(check.spans >= traced.program.len(), "at least one span per instruction");
        assert!(check.tracks >= 5);
        // The spans carry the disassembly labels (Table-3 rows).
        let text = doc.to_string();
        assert!(text.contains("k-means") && text.contains("LOAD") && text.contains("SORT1"));
    }

    #[test]
    fn summary_covers_all_phases_and_surfaces_drops() {
        let reports = crate::evaluation::phase_run_reports();
        let cfg = ArchConfig::paper_default();
        let text = summary(&reports, &cfg, 7);
        for report in &reports {
            let label = report.label.as_deref().unwrap();
            assert!(text.contains(&format!("[profile] {label} ")), "missing {label}");
        }
        assert!(text.contains("[profile] events_dropped 7"));
    }

    #[test]
    fn expected_phase_verdicts() {
        // The empirical Figure-15 attribution this PR pins: LR's streaming
        // phases are bandwidth-bound, CT prediction pays descriptor
        // reconfiguration, everything else keeps the pipeline busy.
        let cfg = ArchConfig::paper_default();
        for report in crate::evaluation::phase_run_reports() {
            let verdict = analyze(&report, &cfg).verdict;
            let expected = match report.label.as_deref().unwrap() {
                "LR-train" | "LR-pred" => Bottleneck::Dma,
                "CT-pred" => Bottleneck::Reconfiguration,
                _ => Bottleneck::Pipeline,
            };
            assert_eq!(verdict, expected, "{:?}", report.label);
        }
    }

    #[test]
    fn history_record_round_trips_and_diffs_clean() {
        let record = history_record();
        let line = record.to_string();
        let parsed = pudiannao_accel::json::parse(&line).unwrap();
        let deltas = diff_records(&parsed, &record).unwrap();
        assert_eq!(deltas.len(), 13);
        assert!(deltas.iter().all(|d| d.cycles_pct == 0.0 && d.energy_pct == 0.0));
        assert!(!deltas.iter().any(PhaseDelta::regressed));
    }

    #[test]
    fn inflated_cycles_trip_the_gate() {
        let record = history_record();
        let slow = with_inflated_cycles(&record, 5.0);
        let deltas = diff_records(&record, &slow).unwrap();
        assert!(deltas.iter().all(|d| d.cycles_pct > 4.0 && d.cycles_pct < 6.0));
        assert!(deltas.iter().all(PhaseDelta::regressed));
        // A change within tolerance does not.
        let ok = with_inflated_cycles(&record, 1.0);
        assert!(!diff_records(&record, &ok).unwrap().iter().any(PhaseDelta::regressed));
    }

    #[test]
    fn serve_sweep_rides_the_record_and_gates_throughput() {
        let record = history_record();
        let sweep = record.get("serve").and_then(Value::as_array).expect("record carries sweep");
        assert_eq!(sweep.len(), 4, "1/2/4/8-shard sweep");
        // Self-diff is clean, and inflation leaves the sweep untouched.
        assert!(!diff_serve(&record, &record).unwrap().iter().any(ServeDelta::regressed));
        let inflated = with_inflated_cycles(&record, 5.0);
        assert!(!diff_serve(&record, &inflated).unwrap().iter().any(ServeDelta::regressed));
        // A 5% throughput drop at every point fails the gate...
        let mut points = Value::array(Vec::new());
        for p in sweep {
            points.push(
                Value::object()
                    .with("shards", p.get("shards").and_then(Value::as_u64).unwrap())
                    .with(
                        "throughput_rps",
                        p.get("throughput_rps").and_then(Value::as_f64).unwrap() * 0.95,
                    )
                    .with("p99_ns", p.get("p99_ns").and_then(Value::as_u64).unwrap()),
            );
        }
        // `set` appends, so a changed key must go on a fresh object.
        let slow = Value::object()
            .with("schema_version", record.get("schema_version").cloned().unwrap())
            .with("config_fingerprint", record.get("config_fingerprint").cloned().unwrap())
            .with("phases", record.get("phases").cloned().unwrap())
            .with("serve", points);
        let deltas = diff_serve(&record, &slow).unwrap();
        assert!(deltas.iter().all(ServeDelta::regressed));
        // ...while a baseline that predates the serving layer is skipped.
        assert!(diff_serve(&Value::object(), &record).unwrap().is_empty());
    }

    #[test]
    fn chaos_headline_rides_the_record_and_old_baselines_skip() {
        let record = history_record();
        let chaos = record.get("chaos").expect("record carries the chaos headline");
        let slo = |arm: &str| {
            chaos
                .get(arm)
                .and_then(|a| a.get("slo_overall_permille"))
                .and_then(Value::as_u64)
                .expect("headline arm carries attainment")
        };
        // The headline preserves the chaos_bench invariant: defended
        // strictly beats undefended at the pinned mid intensity.
        assert!(slo("full") > slo("none"), "full {} vs none {}", slo("full"), slo("none"));
        // Self-diff is clean; inflation leaves the headline untouched.
        assert!(!diff_chaos(&record, &record).unwrap().iter().any(ChaosDelta::regressed));
        let inflated = with_inflated_cycles(&record, 5.0);
        assert!(!diff_chaos(&record, &inflated).unwrap().iter().any(ChaosDelta::regressed));
        // A record written before the chaos headline existed (the PR-7
        // schema) skips cleanly in both directions instead of erroring.
        let old = Value::object()
            .with("schema_version", record.get("schema_version").cloned().unwrap())
            .with("config_fingerprint", record.get("config_fingerprint").cloned().unwrap())
            .with("phases", record.get("phases").cloned().unwrap())
            .with("serve", record.get("serve").cloned().unwrap());
        assert!(diff_chaos(&old, &record).unwrap().is_empty());
        assert!(diff_chaos(&record, &old).unwrap().is_empty());
        // A genuine attainment collapse in the defended arm trips the gate.
        let sick_chaos = Value::object()
            .with("none", Value::object().with("slo_overall_permille", slo("none")))
            .with(
                "full",
                Value::object().with("slo_overall_permille", slo("full").saturating_sub(50)),
            );
        let sick = Value::object().with("chaos", sick_chaos);
        let deltas = diff_chaos(&record, &sick).unwrap();
        assert!(deltas.iter().any(ChaosDelta::regressed));
        // A malformed headline is refused, not silently zeroed.
        let broken = Value::object().with("chaos", Value::object());
        assert!(diff_chaos(&record, &broken).unwrap_err().contains("missing arm"));
    }

    #[test]
    fn metrics_headline_rides_the_record_and_old_baselines_skip() {
        let record = history_record();
        let metrics = record.get("metrics").expect("record carries the metrics headline");
        let field = |key: &str| {
            metrics.get(key).and_then(Value::as_u64).expect("headline carries the column")
        };
        // A windowed maximum can never undercut the whole-run percentile
        // it is a max over.
        assert!(field("windowed_p99_max_ns") >= field("overall_p99_ns"));
        assert!(field("windows") > 0);
        // Self-diff is clean; inflation leaves the headline untouched.
        assert!(!diff_metrics(&record, &record).unwrap().iter().any(MetricsDelta::regressed));
        let inflated = with_inflated_cycles(&record, 5.0);
        assert!(!diff_metrics(&record, &inflated).unwrap().iter().any(MetricsDelta::regressed));
        // A record written before the metrics headline existed (the PR-8
        // schema) skips cleanly in both directions instead of erroring.
        let old = Value::object()
            .with("schema_version", record.get("schema_version").cloned().unwrap())
            .with("config_fingerprint", record.get("config_fingerprint").cloned().unwrap())
            .with("phases", record.get("phases").cloned().unwrap())
            .with("serve", record.get("serve").cloned().unwrap())
            .with("chaos", record.get("chaos").cloned().unwrap());
        assert!(diff_metrics(&old, &record).unwrap().is_empty());
        assert!(diff_metrics(&record, &old).unwrap().is_empty());
        // A genuine burst-tail collapse trips the gate.
        let sick = Value::object().with(
            "metrics",
            Value::object()
                .with("window_ns", field("window_ns"))
                .with("overall_p99_ns", field("overall_p99_ns"))
                .with("windowed_p99_max_ns", field("windowed_p99_max_ns") * 2)
                .with("windows", field("windows")),
        );
        let deltas = diff_metrics(&record, &sick).unwrap();
        assert!(deltas.iter().any(MetricsDelta::regressed));
        // A changed window size or a missing column is refused.
        let resized = Value::object().with(
            "metrics",
            Value::object()
                .with("window_ns", field("window_ns") * 2)
                .with("overall_p99_ns", field("overall_p99_ns"))
                .with("windowed_p99_max_ns", field("windowed_p99_max_ns")),
        );
        assert!(diff_metrics(&record, &resized).unwrap_err().contains("window changed"));
        let broken = Value::object().with("metrics", Value::object());
        assert!(diff_metrics(&record, &broken).unwrap_err().contains("missing"));
    }

    #[test]
    fn incomparable_records_are_refused() {
        let record = history_record();
        let phases = record.get("phases").cloned().unwrap();
        let other = Value::object()
            .with("schema_version", HISTORY_SCHEMA_VERSION)
            .with("config_fingerprint", "arch-0000000000000000")
            .with("phases", phases.clone());
        assert!(diff_records(&record, &other).unwrap_err().contains("fingerprint"));
        let old = Value::object()
            .with("schema_version", HISTORY_SCHEMA_VERSION + 1)
            .with("config_fingerprint", record.get("config_fingerprint").cloned().unwrap())
            .with("phases", phases);
        assert!(diff_records(&old, &record).unwrap_err().contains("schema"));
        assert_eq!(pct_change(0.0, 0.0), 0.0);
        assert_eq!(pct_change(0.0, 5.0), f64::INFINITY);
    }
}
