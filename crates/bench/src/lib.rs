//! Shared reporting helpers for the reproduction binaries.
//!
//! Every `repro_*` binary regenerates one table or figure from the paper
//! and prints (a) the measured series and (b) a paper-vs-measured check
//! line for each number the paper states explicitly. `repro_all` collects
//! the same data as JSON for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluation;
pub mod fault_campaign;
pub mod locality;
pub mod parallel;
pub mod profile;

use pudiannao_accel::json::Value;

/// One paper-vs-measured comparison point.
#[derive(Clone, Debug)]
pub struct Check {
    /// What is being compared (e.g. "k-NN tiled bandwidth reduction, %").
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured/modelled value.
    pub measured: f64,
}

impl Check {
    /// Builds a check point.
    #[must_use]
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Check {
        Check { metric: metric.into(), paper, measured }
    }

    /// Relative deviation from the paper value (0 when the paper value is
    /// zero).
    #[must_use]
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            return 0.0;
        }
        (self.measured - self.paper).abs() / self.paper.abs()
    }

    /// Prints the comparison in the standard one-line format.
    pub fn print(&self) {
        println!(
            "  [check] {:<50} paper {:>10.2}   measured {:>10.2}   ({:+.1}%)",
            self.metric,
            self.paper,
            self.measured,
            100.0 * (self.measured - self.paper) / self.paper.abs().max(1e-12),
        );
    }

    /// JSON object for the summary file.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("metric", self.metric.as_str())
            .with("paper", self.paper)
            .with("measured", self.measured)
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==== {id}: {title} ====");
}

/// Prints one row of a simple two-column series.
pub fn series_row(label: &str, value: f64, unit: &str) {
    println!("  {label:<28} {value:>14.4} {unit}");
}

/// An experiment result bundle for the JSON summary.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment identifier ("fig02", "table1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// All paper-vs-measured checks.
    pub checks: Vec<Check>,
}

impl ExperimentReport {
    /// JSON object for the summary file.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with("checks", Value::array(self.checks.iter().map(Check::to_json).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_deviation() {
        let c = Check::new("x", 100.0, 110.0);
        assert!((c.deviation() - 0.1).abs() < 1e-12);
        assert_eq!(Check::new("y", 0.0, 5.0).deviation(), 0.0);
    }

    #[test]
    fn report_serialises() {
        let r = ExperimentReport {
            id: "fig02".into(),
            title: "t".into(),
            checks: vec![Check::new("m", 1.0, 1.1)],
        };
        let json = r.to_json().to_string();
        assert!(json.contains("fig02"));
        assert!(json.contains("\"paper\":1.0"));
    }
}
