//! Deterministic fork-join harness — re-exported from the serving crate.
//!
//! The implementation moved to `pudiannao_serve::pool` so the serving
//! fleet and the figure harness share one worker pool (same
//! `REPRO_THREADS` semantics, same job-order determinism guarantee).

pub use pudiannao_serve::pool::{run_indexed, worker_count};
