//! Timeline profiler and bottleneck report; see `pudiannao_bench::profile`.
//!
//! Usage: `profile [--out-dir DIR]`. Writes
//!
//! - `trace_timeline.json` — Chrome Trace Event JSON of a traced,
//!   functionally executed k-Means distance phase (open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>), and
//! - `phase_reports.json` — all 13 Figure-15 phase reports, each with its
//!   bottleneck `analysis` object,
//!
//! then prints the per-phase verdict table. The written timeline is
//! parsed back and structurally validated before the run reports
//! success. All output is deterministic: byte-identical at any
//! `REPRO_THREADS` setting.

use pudiannao_accel::profile::{chrome_trace, validate_timeline};
use pudiannao_accel::{json, ArchConfig};
use pudiannao_bench::{evaluation, profile};

fn main() {
    let mut dir = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => match args.next() {
                Some(path) => dir = path,
                None => {
                    eprintln!("error: --out-dir needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?} (expected --out-dir DIR)");
                std::process::exit(2);
            }
        }
    }
    let dir = std::path::Path::new(&dir);

    pudiannao_bench::banner("profile", "timeline export and bottleneck attribution");

    // Timeline: trace the functional stand-in phase, export, then parse
    // the on-disk bytes back and validate the structure end to end.
    let traced = profile::traced_phase();
    let trace = traced.report.trace.as_ref().expect("traced run carries a trace");
    let doc = chrome_trace(&traced.config, &traced.program, trace, &traced.labels);
    let timeline_path = dir.join("trace_timeline.json");
    let text = doc.to_string_pretty() + "\n";
    if let Err(e) = std::fs::write(&timeline_path, &text) {
        eprintln!("error: cannot write {}: {e}", timeline_path.display());
        std::process::exit(1);
    }
    let reread = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: exported timeline is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    match validate_timeline(&reread) {
        Ok(check) => println!(
            "[profile] timeline valid: {} spans, {} instants, {} tracks",
            check.spans, check.instants, check.tracks
        ),
        Err(e) => {
            eprintln!("error: exported timeline is structurally invalid: {e}");
            std::process::exit(1);
        }
    }
    println!("  wrote {}", timeline_path.display());

    // Per-phase bottleneck reports for all 13 Figure-15 phases.
    let reports_path = dir.join("phase_reports.json");
    if let Err(e) =
        std::fs::write(&reports_path, evaluation::phase_reports_json().to_string_pretty() + "\n")
    {
        eprintln!("error: cannot write {}: {e}", reports_path.display());
        std::process::exit(1);
    }
    println!("  wrote {}", reports_path.display());

    let reports = evaluation::phase_run_reports();
    let cfg = ArchConfig::paper_default();
    print!("{}", profile::summary(&reports, &cfg, trace.events_dropped));
}
