//! Seeded fault-injection campaign across the seven ML kernels; see
//! `pudiannao_bench::fault_campaign`.
//!
//! Usage: `fault_campaign [--smoke] [--out PATH]`. Writes the campaign
//! report (default `fault_campaign.json`) and prints per-class outcome
//! totals. The report is a pure function of the built-in seed:
//! byte-identical at any `REPRO_THREADS` setting.

use pudiannao_bench::fault_campaign::{run_campaign, CampaignConfig};

fn main() {
    let mut smoke = false;
    let mut out = String::from("fault_campaign.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?} (expected --smoke / --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let config = if smoke { CampaignConfig::smoke() } else { CampaignConfig::full() };
    pudiannao_bench::banner(
        "faults",
        if smoke { "fault-injection smoke campaign" } else { "fault-injection campaign" },
    );
    let (json, totals) = run_campaign(&config);

    let mut all = pudiannao_bench::fault_campaign::OutcomeCounts::default();
    for (arm, counts) in &totals {
        println!(
            "  {arm:<12} masked {:>4}  corrected {:>4}  detected {:>4}  sdc {:>4}  crash {:>4}",
            counts.masked, counts.corrected, counts.detected, counts.sdc, counts.crash
        );
        all.add(counts);
    }
    println!("[faults] masked {}", all.masked);
    println!("[faults] corrected {}", all.corrected);
    println!("[faults] detected {}", all.detected);
    println!("[faults] sdc {}", all.sdc);
    println!("[faults] crash {}", all.crash);

    if let Err(e) = std::fs::write(&out, json.to_string_pretty() + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("  wrote {out}");
}
