//! Regenerates the paper experiment; see `pudiannao_bench::evaluation`.
//! Also writes `phase_reports.json`: one machine-readable `RunReport` per
//! phase, with the per-stage busy-cycle and DMA descriptor breakdowns.
fn main() {
    let _ = pudiannao_bench::evaluation::fig15_speedup();
    let json = pudiannao_bench::evaluation::phase_reports_json();
    std::fs::write("phase_reports.json", json.to_string_pretty())
        .expect("writable working directory");
    println!("\nwrote phase_reports.json (13 per-phase run reports)");
}
