//! Regenerates the paper experiment; see `pudiannao_bench::evaluation`.
fn main() {
    let _ = pudiannao_bench::evaluation::fig13_gpu_vs_cpu();
}
