//! Regenerates the paper experiment; see `pudiannao_bench::evaluation`.
fn main() {
    let _ = pudiannao_bench::evaluation::ablation_interp();
}
