//! Regenerates the paper experiment; see `pudiannao_bench::locality`.
fn main() {
    let _ = pudiannao_bench::locality::fig05_dnn_tiling();
}
