//! Hot-path benchmark harness: times every reproduction experiment and
//! the softfp conversion kernels with `std::time::Instant`, then writes
//! `BENCH_repro.json`.
//!
//! Experiments run sequentially here regardless of `REPRO_THREADS` (each
//! timing must not contend with the others), with their stdout chatter
//! left enabled — the timed quantity is the full experiment, exactly
//! what `repro_all` runs. Softfp kernels are timed over fixed sweeps and
//! reported in nanoseconds per conversion, and the memsim section times
//! the cache's scalar vs coalesced vs batched (`access_block`) paths, the
//! SoA block pass (`access_soa`, with a forced SWAR-vs-`std::arch` probe
//! comparison on the same packed stream) and the batched multi-trace
//! executor, plus the engine-build-vs-reset cost that motivates the
//! locality engine pool. Cache-path rounds are scored
//! best-of (the host is a shared single core; the minimum round is the
//! code's speed, the rest is neighbour noise), and every row prints its
//! percentage change against the previous `BENCH_repro.json` when one is
//! present.

use pudiannao_accel::json::{self, Value};
use pudiannao_bench::{evaluation, locality, ExperimentReport};
use pudiannao_memsim::{
    kernels, Access, AccessBlock, Addr, Cache, CacheConfig, ProbePath, SimdEngine, VarClass,
    Workload,
};
use pudiannao_softfp::{batch, F16};
use std::hint::black_box;
use std::time::Instant;

type Job = (&'static str, fn() -> ExperimentReport);

const EXPERIMENTS: &[Job] = &[
    ("fig02", locality::fig02_knn_tiling as fn() -> ExperimentReport),
    ("fig04", locality::fig04_kmeans_tiling),
    ("fig05", locality::fig05_dnn_tiling),
    ("fig08", locality::fig08_lr_tiling),
    ("fig09", locality::fig09_svm_tiling),
    ("fig10", locality::fig10_reuse_distance),
    ("table1", evaluation::table1_precision),
    ("table3", evaluation::table3_codegen),
    ("table5", evaluation::table5_layout),
    ("fig14", evaluation::fig14_floorplan),
    ("fig13", evaluation::fig13_gpu_vs_cpu),
    ("fig15", evaluation::fig15_speedup),
    ("fig16", evaluation::fig16_energy),
    ("ablation-buffers", evaluation::ablation_buffers),
    ("ablation-sorter", evaluation::ablation_sorter),
    ("ablation-interp", evaluation::ablation_interp),
    ("ablation-scaling", evaluation::ablation_scaling),
    ("section2-time", evaluation::time_fractions),
];

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The previous `BENCH_repro.json`, if one exists and parses — the
/// baseline for the inline delta column.
fn previous_record() -> Option<Value> {
    let text = std::fs::read_to_string("BENCH_repro.json").ok()?;
    json::parse(&text).ok()
}

/// Looks up `metric` in the `section` row whose `key` field equals `name`
/// (experiments key rows by `id`, the kernel sections by `name`).
fn previous_metric(
    prev: Option<&Value>,
    section: &str,
    key: &str,
    name: &str,
    metric: &str,
) -> Option<f64> {
    prev?
        .get(section)?
        .as_array()?
        .iter()
        .find(|row| row.get(key).and_then(Value::as_str) == Some(name))?
        .get(metric)
        .and_then(Value::as_f64)
}

/// `" (+12.3% vs last)"`, or empty when the previous record has no such
/// row. The sign always reports the metric's own direction — positive is
/// faster for throughput rows and slower for time rows.
fn delta_column(prev: Option<f64>, current: f64) -> String {
    match prev {
        Some(p) if p != 0.0 => format!(" ({:+.1}% vs last)", (current - p) / p * 100.0),
        _ => String::new(),
    }
}

/// Best-of-N round time in seconds.
fn best_of<F: FnMut()>(rounds: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Times the widening path: every binary16 bit pattern through the LUT.
fn bench_to_f32(rounds: u32) -> (f64, u64) {
    let t = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..rounds {
        for bits in 0..=u16::MAX {
            sink += F16::from_bits(bits).to_f32();
        }
    }
    black_box(sink);
    (t.elapsed().as_secs_f64() * 1e9, u64::from(rounds) * 65_536)
}

/// Times the narrowing path: a dense f32 sweep through the fast rounder.
fn bench_from_f32(rounds: u32) -> (f64, u64) {
    let inputs: Vec<f32> = (0..1u32 << 16).map(|i| (i as f32 - 32768.0) * 0.3717).collect();
    let t = Instant::now();
    let mut sink = 0u32;
    for _ in 0..rounds {
        for &x in &inputs {
            sink = sink.wrapping_add(u32::from(F16::from_f32(x).to_bits()));
        }
    }
    black_box(sink);
    (t.elapsed().as_secs_f64() * 1e9, u64::from(rounds) * u64::from(1u32 << 16))
}

/// Times the fused batch round-trip used by the accelerator buffers.
fn bench_batch_quantize(rounds: u32) -> (f64, u64) {
    let src: Vec<f32> = (0..1u32 << 16).map(|i| (i as f32 - 32768.0) * 0.011).collect();
    let mut dst = vec![0.0f32; src.len()];
    let t = Instant::now();
    for _ in 0..rounds {
        batch::quantize_f32_into(&src, &mut dst);
        black_box(&dst);
    }
    (t.elapsed().as_secs_f64() * 1e9, u64::from(rounds) * src.len() as u64)
}

/// A k-NN-shaped operand stream (two 32-byte streaming reads plus the
/// accumulator write, 4 chunks per pair) — the same access pattern the
/// locality figures hammer the cache with.
fn knn_style_ops() -> Vec<[Access; 3]> {
    let mut ops = Vec::with_capacity(64 * 512 * 4);
    for i in 0..64u64 {
        for j in 0..512u64 {
            for c in 0..4u64 {
                ops.push([
                    Access::read(Addr(i * 128 + c * 32), 32, VarClass::Hot),
                    Access::read(Addr(0x0100_0000 + j * 128 + c * 32), 32, VarClass::Cold),
                    Access::write(Addr(0x0200_0000 + (i * 512 + j) * 4), 4, VarClass::Output),
                ]);
            }
        }
    }
    ops
}

/// Times the scalar per-access path, the coalesced [`Cache::access_run`]
/// path, and the batched [`Cache::access_block`] pass over the same
/// operand stream; returns `(scalar_ns, coalesced_ns, block_ns, accesses)`
/// where each time is the best single pass over the stream.
fn bench_cache_paths(rounds: u32) -> (f64, f64, f64, u64) {
    let ops = knn_style_ops();
    let flat: Vec<Access> = ops.iter().flatten().copied().collect();
    let accesses = flat.len() as u64;
    let mut cache = Cache::new(CacheConfig::paper_default()).expect("valid cache config");

    let scalar_ns = best_of(rounds, || {
        cache.reset();
        for op in &ops {
            for a in op {
                cache.access_scalar(*a);
            }
        }
    }) * 1e9;
    black_box(cache.stats());

    let coalesced_ns = best_of(rounds, || {
        cache.reset();
        for op in &ops {
            cache.access_run(op);
        }
    }) * 1e9;
    black_box(cache.stats());

    let block_ns = best_of(rounds, || {
        cache.reset();
        cache.access_block(&flat);
    }) * 1e9;
    black_box(cache.stats());

    (scalar_ns, coalesced_ns, block_ns, accesses)
}

/// Times the monomorphised SoA pass ([`Cache::access_soa`]) over the
/// same stream pre-packed into an [`AccessBlock`] — the replay shape the
/// serving trace-template cache hits — once with the auto-selected probe
/// and once per forced [`ProbePath`] the host supports, so the SWAR and
/// `std::arch` tag probes get compared head to head on identical work.
/// Returns `(soa_ns, [(probe_row_name, ns)], accesses)`.
fn bench_soa_block(rounds: u32) -> (f64, Vec<(&'static str, f64)>, u64) {
    let ops = knn_style_ops();
    let cfg = CacheConfig::paper_default();
    let mut block = AccessBlock::new(cfg.line_bytes);
    for op in &ops {
        block.push_op(op);
    }
    let accesses = block.len() as u64;
    let mut cache = Cache::new(cfg).expect("valid cache config");

    let soa_ns = best_of(rounds, || {
        cache.reset();
        cache.access_soa(&block);
    }) * 1e9;
    black_box(cache.stats());

    let mut probes = Vec::new();
    for (name, path) in [("probe_swar", ProbePath::Swar), ("probe_simd", ProbePath::Simd)] {
        if !cache.force_probe_path(path) {
            println!("[bench] memsim/{name:<20} unsupported on this host (skipped)");
            continue;
        }
        let ns = best_of(rounds, || {
            cache.reset();
            cache.access_soa(&block);
        }) * 1e9;
        black_box(cache.stats());
        probes.push((name, ns));
    }
    (soa_ns, probes, accesses)
}

/// Times the batched executor's steady state: three independent tiled
/// kernel traces packed once into SoA [`AccessBlock`] templates (the
/// serving fleet's trace-template cache does exactly this on first use),
/// then each round replays every template through a fresh engine via
/// [`SimdEngine::commit_block`]. Generation + pack cost is paid once
/// outside the timed region — re-generating identical traces per round
/// is the waste this pipeline exists to eliminate, and the fresh-path
/// cost stays visible in the fig02–fig09 experiment rows above. Returns
/// `(ns, ops)` for the best round.
fn bench_batch_traces(rounds: u32) -> (f64, u64) {
    struct Pack<'a> {
        block: &'a mut AccessBlock,
    }
    impl kernels::TraceSink for Pack<'_> {
        fn op(&mut self, operands: &[Access]) {
            self.block.push_op(operands);
        }
    }

    let cfg = CacheConfig::paper_default();
    let knn_shape = kernels::knn::DistanceShape { testing: 64, reference: 512, features: 32 };
    let svm_shape = kernels::svm::KernelMatrixShape { train: 256, features: 32 };
    let knn = kernels::knn::Tiled::bandwidth(knn_shape, 32, 32);
    let svm = kernels::svm::Tiled { shape: svm_shape, ti: 32, tj: 32 };
    let dnn = kernels::dnn::Tiled {
        shape: kernels::dnn::LayerShape { inputs: 4096, outputs: 64 },
        t: 1024,
    };
    let workloads: Vec<&dyn Workload> = vec![&knn, &svm, &dnn];
    let templates: Vec<AccessBlock> = workloads
        .iter()
        .map(|w| {
            let mut block = AccessBlock::new(cfg.line_bytes);
            w.trace(&mut Pack { block: &mut block });
            block
        })
        .collect();
    let mut total_ops = 0u64;
    let ns = best_of(rounds, || {
        let mut ops = 0u64;
        for template in &templates {
            let mut engine = SimdEngine::new(cfg.clone()).expect("valid cache config");
            engine.commit_block(template);
            ops += engine.report().ops;
            black_box(engine.report());
        }
        total_ops = ops;
    }) * 1e9;
    (ns, total_ops)
}

/// Times building a fresh [`SimdEngine`] vs resetting a pooled one;
/// returns `(build_ns_per_iter, reset_ns_per_iter)`.
fn bench_engine_reuse(iters: u32) -> (f64, f64) {
    let cfg = CacheConfig::paper_default();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(SimdEngine::new(cfg.clone()).expect("valid cache config"));
    }
    let build_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(iters);

    let mut engine = SimdEngine::new(cfg).expect("valid cache config");
    let warm = [Access::read(Addr(0), 32, VarClass::Hot)];
    let t = Instant::now();
    for _ in 0..iters {
        engine.op(&warm);
        engine.reset();
    }
    let reset_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    black_box(engine.report());
    (build_ns, reset_ns)
}

fn main() {
    let total = Instant::now();
    let prev = previous_record();
    let prev = prev.as_ref();
    let mut experiment_rows = Vec::new();
    for &(id, job) in EXPERIMENTS {
        let t = Instant::now();
        let report = job();
        let ms = ms_since(t);
        let delta = delta_column(previous_metric(prev, "experiments", "id", id, "ms"), ms);
        println!("[bench] {id:<18} {ms:>10.1} ms   ({} checks){delta}", report.checks.len());
        experiment_rows
            .push(Value::object().with("id", id).with("ms", (ms * 1000.0).round() / 1000.0));
    }

    let mut softfp_rows = Vec::new();
    for (name, (ns, ops)) in [
        ("to_f32_lut", bench_to_f32(200)),
        ("from_f32_fast", bench_from_f32(200)),
        ("batch_quantize", bench_batch_quantize(200)),
    ] {
        let per_op = ns / ops as f64;
        let delta =
            delta_column(previous_metric(prev, "softfp", "name", name, "ns_per_op"), per_op);
        println!("[bench] softfp/{name:<20} {per_op:>8.3} ns/conversion{delta}");
        softfp_rows.push(
            Value::object()
                .with("name", name)
                .with("ns_per_op", (per_op * 1000.0).round() / 1000.0),
        );
    }

    let mut memsim_rows = Vec::new();
    let (scalar_ns, coalesced_ns, block_ns, accesses) = bench_cache_paths(60);
    for (name, ns) in
        [("cache_scalar", scalar_ns), ("cache_coalesced", coalesced_ns), ("cache_simd", block_ns)]
    {
        let maccesses_per_s = accesses as f64 / ns * 1e3;
        let delta = delta_column(
            previous_metric(prev, "memsim", "name", name, "maccesses_per_s"),
            maccesses_per_s,
        );
        println!("[bench] memsim/{name:<20} {maccesses_per_s:>8.1} Maccesses/s{delta}");
        memsim_rows.push(
            Value::object()
                .with("name", name)
                .with("maccesses_per_s", (maccesses_per_s * 1000.0).round() / 1000.0),
        );
    }
    let (soa_ns, probe_rows, soa_accesses) = bench_soa_block(60);
    let mut soa_and_probes = vec![("batch_soa", soa_ns)];
    soa_and_probes.extend(probe_rows);
    for (name, ns) in soa_and_probes {
        let maccesses_per_s = soa_accesses as f64 / ns * 1e3;
        let delta = delta_column(
            previous_metric(prev, "memsim", "name", name, "maccesses_per_s"),
            maccesses_per_s,
        );
        println!("[bench] memsim/{name:<20} {maccesses_per_s:>8.1} Maccesses/s{delta}");
        memsim_rows.push(
            Value::object()
                .with("name", name)
                .with("maccesses_per_s", (maccesses_per_s * 1000.0).round() / 1000.0),
        );
    }
    let (batch_ns, batch_ops) = bench_batch_traces(8);
    let mops_per_s = batch_ops as f64 / batch_ns * 1e3;
    let delta = delta_column(
        previous_metric(prev, "memsim", "name", "batch_traces", "mops_per_s"),
        mops_per_s,
    );
    println!("[bench] memsim/{:<20} {mops_per_s:>8.1} Mops/s{delta}", "batch_traces");
    memsim_rows.push(
        Value::object()
            .with("name", "batch_traces")
            .with("mops_per_s", (mops_per_s * 1000.0).round() / 1000.0),
    );
    let (build_ns, reset_ns) = bench_engine_reuse(20_000);
    for (name, ns) in [("engine_build", build_ns), ("engine_reset", reset_ns)] {
        let delta = delta_column(previous_metric(prev, "memsim", "name", name, "ns_per_iter"), ns);
        println!("[bench] memsim/{name:<20} {ns:>8.1} ns/iter{delta}");
        memsim_rows.push(
            Value::object().with("name", name).with("ns_per_iter", (ns * 1000.0).round() / 1000.0),
        );
    }

    let total_ms = ms_since(total);
    let json = Value::object()
        .with("experiments", Value::array(experiment_rows))
        .with("softfp", Value::array(softfp_rows))
        .with("memsim", Value::array(memsim_rows))
        .with("total_ms", (total_ms * 1000.0).round() / 1000.0);
    std::fs::write("BENCH_repro.json", json.to_string_pretty())
        .expect("writable working directory");
    println!("[bench] total {total_ms:.1} ms; wrote BENCH_repro.json");
}
