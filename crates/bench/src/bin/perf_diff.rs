//! Benchmark-history recorder and perf-regression gate; see
//! `pudiannao_bench::profile`.
//!
//! Usage:
//!
//! - `perf_diff --record [--history PATH]` — append the current modelled
//!   per-phase cycles/energy as one JSONL line (default
//!   `BENCH_history.jsonl`).
//! - `perf_diff --check [--history PATH] [--inflate-cycles-pct P]` —
//!   compare the current model against the last recorded line; exit 1 if
//!   any phase regressed more than 2% in cycles or energy.
//!   `--inflate-cycles-pct` applies a synthetic slowdown to the current
//!   run — the self-check `scripts/check.sh --perf-gate` uses it to
//!   prove a +5% regression actually fails the gate.
//!
//! Records carry a schema version and the configuration fingerprint;
//! the gate refuses to compare across either. Output is deterministic:
//! byte-identical at any `REPRO_THREADS` setting.

use pudiannao_accel::json;
use pudiannao_bench::profile::{
    diff_chaos, diff_metrics, diff_records, diff_serve, history_record, with_inflated_cycles,
    ChaosDelta, MetricsDelta, PhaseDelta, ServeDelta, CHAOS_SLO_SLACK_POINTS,
    METRICS_P99_SLACK_PCT, REGRESSION_THRESHOLD_PCT,
};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut history = String::from("BENCH_history.jsonl");
    let mut mode: Option<&'static str> = None;
    let mut inflate_pct = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--record" => mode = Some("record"),
            "--check" => mode = Some("check"),
            "--history" => match args.next() {
                Some(path) => history = path,
                None => fail("--history needs a path"),
            },
            "--inflate-cycles-pct" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => inflate_pct = pct,
                None => fail("--inflate-cycles-pct needs a number"),
            },
            other => fail(&format!(
                "unknown argument {other:?} (expected --record / --check / --history PATH / \
                 --inflate-cycles-pct P)"
            )),
        }
    }

    let current = {
        let record = history_record();
        if inflate_pct == 0.0 {
            record
        } else {
            with_inflated_cycles(&record, inflate_pct)
        }
    };

    match mode {
        Some("record") => {
            let mut line = current.to_string();
            line.push('\n');
            let existing = std::fs::read_to_string(&history).unwrap_or_default();
            if let Err(e) = std::fs::write(&history, existing + &line) {
                eprintln!("error: cannot write {history}: {e}");
                std::process::exit(1);
            }
            let phases =
                current.get("phases").and_then(json::Value::as_array).map_or(0, |p| p.len());
            let fp = current.get("config_fingerprint").and_then(json::Value::as_str).unwrap_or("?");
            println!("[perf] recorded {phases} phases for {fp} -> {history}");
        }
        Some("check") => {
            let contents = match std::fs::read_to_string(&history) {
                Ok(c) => c,
                Err(e) => fail(&format!("cannot read {history}: {e} (run --record first)")),
            };
            let Some(last) = contents.lines().rev().find(|l| !l.trim().is_empty()) else {
                fail(&format!("{history} has no records (run --record first)"));
            };
            let baseline = match json::parse(last) {
                Ok(v) => v,
                Err(e) => fail(&format!("last record in {history} is not valid JSON: {e}")),
            };
            let deltas = match diff_records(&baseline, &current) {
                Ok(d) => d,
                Err(e) => fail(&e),
            };
            for d in &deltas {
                println!(
                    "[perf] {:<10} cycles {:+.2}%  energy {:+.2}%",
                    d.label, d.cycles_pct, d.energy_pct
                );
            }
            let serve_deltas = match diff_serve(&baseline, &current) {
                Ok(d) => d,
                Err(e) => fail(&e),
            };
            if serve_deltas.is_empty() && baseline.get("serve").is_none() {
                println!("[perf] serve: baseline predates the serving sweep, skipping");
            }
            for d in &serve_deltas {
                println!(
                    "[perf] serve {}-shard throughput {:+.2}%  p99 {:+.2}%  util {:+.2}%",
                    d.shards, d.throughput_pct, d.p99_pct, d.util_pct
                );
            }
            let chaos_deltas = match diff_chaos(&baseline, &current) {
                Ok(d) => d,
                Err(e) => fail(&e),
            };
            if chaos_deltas.is_empty() && baseline.get("chaos").is_none() {
                println!("[perf] chaos: baseline predates the chaos headline, skipping");
            }
            for d in &chaos_deltas {
                println!("[perf] chaos {} arm SLO {:+} permille points", d.arm, d.slo_points);
            }
            let metrics_deltas = match diff_metrics(&baseline, &current) {
                Ok(d) => d,
                Err(e) => fail(&e),
            };
            if metrics_deltas.is_empty() && baseline.get("metrics").is_none() {
                println!("[perf] metrics: baseline predates the metrics headline, skipping");
            }
            for d in &metrics_deltas {
                println!(
                    "[perf] metrics windowed_p99_max {:+.2}%  overall_p99 {:+.2}%",
                    d.windowed_p99_max_pct, d.overall_p99_pct
                );
            }
            let regressed: Vec<&PhaseDelta> = deltas.iter().filter(|d| d.regressed()).collect();
            let serve_regressed: Vec<&ServeDelta> =
                serve_deltas.iter().filter(|d| d.regressed()).collect();
            let chaos_regressed: Vec<&ChaosDelta> =
                chaos_deltas.iter().filter(|d| d.regressed()).collect();
            let metrics_regressed: Vec<&MetricsDelta> =
                metrics_deltas.iter().filter(|d| d.regressed()).collect();
            if regressed.is_empty()
                && serve_regressed.is_empty()
                && chaos_regressed.is_empty()
                && metrics_regressed.is_empty()
            {
                println!(
                    "[perf] OK: no phase or serving point regressed more than \
                     {REGRESSION_THRESHOLD_PCT}% vs the last record"
                );
            } else {
                for d in &regressed {
                    println!(
                        "[perf] FAIL {}: cycles {:+.2}% energy {:+.2}% (threshold \
                         {REGRESSION_THRESHOLD_PCT}%)",
                        d.label, d.cycles_pct, d.energy_pct
                    );
                }
                for d in &serve_regressed {
                    println!(
                        "[perf] FAIL serve {}-shard: throughput {:+.2}% util {:+.2}% \
                         (threshold -{REGRESSION_THRESHOLD_PCT}%)",
                        d.shards, d.throughput_pct, d.util_pct
                    );
                }
                for d in &chaos_regressed {
                    println!(
                        "[perf] FAIL chaos {} arm: SLO {:+} permille points (threshold \
                         -{CHAOS_SLO_SLACK_POINTS})",
                        d.arm, d.slo_points
                    );
                }
                for d in &metrics_regressed {
                    println!(
                        "[perf] FAIL metrics: windowed_p99_max {:+.2}% (threshold \
                         +{METRICS_P99_SLACK_PCT}%)",
                        d.windowed_p99_max_pct
                    );
                }
                std::process::exit(1);
            }
        }
        _ => fail("pass exactly one of --record / --check"),
    }
}
