//! Runs every reproduction experiment and writes `repro_summary.json`.

use pudiannao_bench::{evaluation, locality, ExperimentReport};

fn main() {
    let reports: Vec<ExperimentReport> = vec![
        locality::fig02_knn_tiling(),
        locality::fig04_kmeans_tiling(),
        locality::fig05_dnn_tiling(),
        locality::fig08_lr_tiling(),
        locality::fig09_svm_tiling(),
        locality::fig10_reuse_distance(),
        evaluation::table1_precision(),
        evaluation::table3_codegen(),
        evaluation::table5_layout(),
        evaluation::fig14_floorplan(),
        evaluation::fig13_gpu_vs_cpu(),
        evaluation::fig15_speedup(),
        evaluation::fig16_energy(),
        evaluation::ablation_buffers(),
        evaluation::ablation_sorter(),
        evaluation::ablation_interp(),
        evaluation::ablation_scaling(),
        evaluation::time_fractions(),
    ];
    let json = serde_json::to_string_pretty(&reports).expect("reports serialise");
    std::fs::write("repro_summary.json", &json).expect("writable working directory");
    println!("\nwrote repro_summary.json ({} experiments)", reports.len());
}
