//! Runs every reproduction experiment and writes `repro_summary.json`
//! plus `phase_reports.json` (one machine-readable `RunReport` per
//! Figure-15 phase).

use pudiannao_accel::json::Value;
use pudiannao_bench::{evaluation, locality, ExperimentReport};

fn main() {
    let reports: Vec<ExperimentReport> = vec![
        locality::fig02_knn_tiling(),
        locality::fig04_kmeans_tiling(),
        locality::fig05_dnn_tiling(),
        locality::fig08_lr_tiling(),
        locality::fig09_svm_tiling(),
        locality::fig10_reuse_distance(),
        evaluation::table1_precision(),
        evaluation::table3_codegen(),
        evaluation::table5_layout(),
        evaluation::fig14_floorplan(),
        evaluation::fig13_gpu_vs_cpu(),
        evaluation::fig15_speedup(),
        evaluation::fig16_energy(),
        evaluation::ablation_buffers(),
        evaluation::ablation_sorter(),
        evaluation::ablation_interp(),
        evaluation::ablation_scaling(),
        evaluation::time_fractions(),
    ];
    let json =
        Value::array(reports.iter().map(ExperimentReport::to_json).collect()).to_string_pretty();
    std::fs::write("repro_summary.json", &json).expect("writable working directory");
    println!("\nwrote repro_summary.json ({} experiments)", reports.len());

    let phase_json = evaluation::phase_reports_json();
    std::fs::write("phase_reports.json", phase_json.to_string_pretty())
        .expect("writable working directory");
    println!("wrote phase_reports.json (13 per-phase run reports)");
}
