//! Runs every reproduction experiment and writes `repro_summary.json`
//! plus `phase_reports.json` (one machine-readable `RunReport` per
//! Figure-15 phase).
//!
//! The experiments are independent, so they run on the
//! `pudiannao_bench::parallel` worker pool (capped by `REPRO_THREADS`;
//! set it to 1 for fully sequential console output). Results are
//! collected in experiment order, so both JSON files are byte-identical
//! whatever the worker count — only the interleaving of the progress
//! lines on stdout changes.

use pudiannao_accel::json::Value;
use pudiannao_bench::{evaluation, locality, parallel, ExperimentReport};

type Job = Box<dyn FnOnce() -> ExperimentReport + Send>;

fn main() {
    let jobs: Vec<Job> = vec![
        Box::new(locality::fig02_knn_tiling),
        Box::new(locality::fig04_kmeans_tiling),
        Box::new(locality::fig05_dnn_tiling),
        Box::new(locality::fig08_lr_tiling),
        Box::new(locality::fig09_svm_tiling),
        Box::new(locality::fig10_reuse_distance),
        Box::new(evaluation::table1_precision),
        Box::new(evaluation::table3_codegen),
        Box::new(evaluation::table5_layout),
        Box::new(evaluation::fig14_floorplan),
        Box::new(evaluation::fig13_gpu_vs_cpu),
        Box::new(evaluation::fig15_speedup),
        Box::new(evaluation::fig16_energy),
        Box::new(evaluation::ablation_buffers),
        Box::new(evaluation::ablation_sorter),
        Box::new(evaluation::ablation_interp),
        Box::new(evaluation::ablation_scaling),
        Box::new(evaluation::time_fractions),
    ];
    let workers = parallel::worker_count(jobs.len());
    if workers > 1 {
        println!("running {} experiments on {workers} workers", jobs.len());
    }
    let reports = parallel::run_indexed(jobs);
    let json =
        Value::array(reports.iter().map(ExperimentReport::to_json).collect()).to_string_pretty();
    std::fs::write("repro_summary.json", &json).expect("writable working directory");
    println!("\nwrote repro_summary.json ({} experiments)", reports.len());

    let phase_json = evaluation::phase_reports_json();
    std::fs::write("phase_reports.json", phase_json.to_string_pretty())
        .expect("writable working directory");
    println!("wrote phase_reports.json (13 per-phase run reports)");
}
