//! Section-2 locality experiments: Figures 2, 4, 5, 8, 9 and 10.

use crate::{banner, series_row, Check, ExperimentReport};
use pudiannao_memsim::{kernels, CacheConfig};

/// Figure 2: k-NN distance-calculation bandwidth, untiled vs tiled.
#[must_use]
pub fn fig02_knn_tiling() -> ExperimentReport {
    banner("fig02", "k-NN distance bandwidth, untiled vs 32x32 tiled");
    let cfg = CacheConfig::paper_default();
    // The paper's locality study: 32-dim fp32 instances, references far
    // beyond cache capacity.
    let shape = kernels::knn::DistanceShape { testing: 512, reference: 2048, features: 32 };
    let untiled = kernels::knn::untiled_bandwidth(&shape, &cfg);
    let tiled = kernels::knn::tiled_bandwidth(&shape, 32, 32, &cfg);
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let reduction = tiled.reduction_vs(&untiled);
    let check = Check::new("bandwidth reduction from tiling (%)", 93.9, reduction);
    check.print();
    ExperimentReport {
        id: "fig02".into(),
        title: "k-NN distance bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 4: k-Means distance bandwidth (k = 64), untiled vs tiled.
#[must_use]
pub fn fig04_kmeans_tiling() -> ExperimentReport {
    banner("fig04", "k-Means distance bandwidth (k = 64), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::kmeans::KMeansShape { instances: 4096, centroids: 64, features: 32 };
    let untiled = kernels::kmeans::untiled_bandwidth(&shape, &cfg);
    let tiled = kernels::kmeans::tiled_bandwidth(&shape, 32, 32, &cfg);
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 92.5, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig04".into(),
        title: "k-Means distance bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 5: DNN feedforward bandwidth (Na = 16384), untiled vs tiled.
#[must_use]
pub fn fig05_dnn_tiling() -> ExperimentReport {
    banner("fig05", "DNN feedforward bandwidth (Na = 16384), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::dnn::LayerShape { inputs: 16384, outputs: 256 };
    let untiled = kernels::dnn::untiled_bandwidth(&shape, &cfg);
    let tiled = kernels::dnn::tiled_bandwidth(&shape, 4096, &cfg);
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 46.7, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig05".into(),
        title: "DNN feedforward bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 8: LR prediction bandwidth (d = 16384), untiled vs tiled.
#[must_use]
pub fn fig08_lr_tiling() -> ExperimentReport {
    banner("fig08", "LR prediction bandwidth (d = 16384), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::linreg::LinRegShape { coefficients: 16384, instances: 256 };
    let untiled = kernels::linreg::untiled_bandwidth(&shape, &cfg);
    let tiled = kernels::linreg::tiled_bandwidth(&shape, 4096, &cfg);
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 46.7, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig08".into(),
        title: "LR prediction bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 9: SVM kernel-matrix bandwidth (d = 32), untiled vs tiled.
#[must_use]
pub fn fig09_svm_tiling() -> ExperimentReport {
    banner("fig09", "SVM kernel-matrix bandwidth (d = 32), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::svm::KernelMatrixShape { train: 2048, features: 32 };
    let untiled = kernels::svm::untiled_bandwidth(&shape, &cfg);
    let tiled = kernels::svm::tiled_bandwidth(&shape, 32, 32, &cfg);
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 93.9, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig09".into(),
        title: "SVM kernel-matrix bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 10: per-variable reuse-distance clustering.
#[must_use]
pub fn fig10_reuse_distance() -> ExperimentReport {
    banner("fig10", "reuse-distance classes (tiled k-NN vs NB training)");
    // (a) tiled k-NN distance calculations: 3 classes.
    let shape = kernels::knn::DistanceShape { testing: 96, reference: 96, features: 32 };
    let knn = kernels::knn::tiled_reuse(&shape, 32, 32);
    let knn_classes = knn.classes(3.0);
    for (i, c) in knn_classes.iter().enumerate() {
        series_row(
            &format!("k-NN class {i} mean distance"),
            (c.min_distance + c.max_distance) / 2.0,
            &format!("instructions ({} vars)", c.members),
        );
    }
    // (b) NB training: 2 classes (instance data at ~1; counters spread).
    let nb_shape = kernels::nb::NbShape { instances: 512, features: 8, values: 4, classes: 5 };
    let nb = kernels::nb::training_reuse(&nb_shape, 42);
    let nb_classes = nb.classes(8.0);
    for (i, c) in nb_classes.iter().enumerate() {
        series_row(
            &format!("NB class {i} mean distance"),
            (c.min_distance + c.max_distance) / 2.0,
            &format!("instructions ({} vars)", c.members),
        );
    }
    let c1 = Check::new("tiled k-NN reuse-distance classes", 3.0, knn_classes.len() as f64);
    // The paper reports 2 classes; our finer-grained trace also separates
    // the candidate-value table, so >= 2 is the faithful statement.
    let c2 = Check::new("NB training reuse-distance classes (>=)", 2.0, nb_classes.len() as f64);
    c1.print();
    c2.print();
    ExperimentReport {
        id: "fig10".into(),
        title: "reuse-distance clustering".into(),
        checks: vec![c1, c2],
    }
}
