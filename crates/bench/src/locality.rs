//! Section-2 locality experiments: Figures 2, 4, 5, 8, 9 and 10.
//!
//! The bandwidth figures run their untiled/tiled points as
//! [`crate::parallel::run_indexed`] jobs over an [`EnginePool`]: with one
//! `REPRO_THREADS` worker the points run in order and the second reuses
//! the first's engine allocation; with more workers each point claims its
//! own engine and the pair runs concurrently. Either way the reported
//! numbers are identical — they derive only from each point's own cache
//! statistics.

use crate::{banner, parallel, series_row, Check, ExperimentReport};
use pudiannao_memsim::{
    batch, kernels, AccessBlock, BandwidthReport, CacheConfig, ReuseProfiler, SimdEngine, Workload,
};
use std::sync::Mutex;

/// A pool of reusable [`SimdEngine`]s (each with its batching scratch
/// block): jobs check one out, run, and return it, so sequential jobs
/// share one cache allocation while concurrent jobs each build their own
/// on first use.
struct EnginePool {
    cfg: CacheConfig,
    free: Mutex<Vec<(SimdEngine, AccessBlock)>>,
}

impl EnginePool {
    fn new(cfg: CacheConfig) -> EnginePool {
        EnginePool { cfg, free: Mutex::new(Vec::new()) }
    }

    fn with_engine<T>(&self, f: impl FnOnce(&mut SimdEngine, &mut AccessBlock) -> T) -> T {
        let pooled = self.free.lock().expect("engine pool lock").pop();
        let (mut engine, mut block) = pooled.unwrap_or_else(|| {
            (
                SimdEngine::new(self.cfg.clone()).expect("valid cache config"),
                AccessBlock::with_capacity(self.cfg.line_bytes, batch::FLUSH_ACCESSES + 32),
            )
        });
        let out = f(&mut engine, &mut block);
        self.free.lock().expect("engine pool lock").push((engine, block));
        out
    }
}

/// Runs a figure's untiled and tiled points as parallel jobs over pooled
/// engines, dispatching both through the unified [`Workload`] trait via
/// the batched trace path ([`batch::run_buffered`] — identical counters
/// to `Workload::run`, one block pass instead of a call per op); returns
/// `(untiled, tiled)`.
fn untiled_tiled_pair(
    cfg: &CacheConfig,
    untiled: &dyn Workload,
    tiled: &dyn Workload,
) -> (BandwidthReport, BandwidthReport) {
    let pool = EnginePool::new(cfg.clone());
    let jobs: Vec<Box<dyn FnOnce() -> BandwidthReport + Send + '_>> = vec![
        Box::new(|| pool.with_engine(|e, buf| batch::run_buffered(untiled, e, buf).report())),
        Box::new(|| pool.with_engine(|e, buf| batch::run_buffered(tiled, e, buf).report())),
    ];
    let mut reports = parallel::run_indexed(jobs);
    let t = reports.pop().expect("two jobs");
    let u = reports.pop().expect("two jobs");
    (u, t)
}

/// Figure 2: k-NN distance-calculation bandwidth, untiled vs tiled.
#[must_use]
pub fn fig02_knn_tiling() -> ExperimentReport {
    banner("fig02", "k-NN distance bandwidth, untiled vs 32x32 tiled");
    let cfg = CacheConfig::paper_default();
    // The paper's locality study: 32-dim fp32 instances, references far
    // beyond cache capacity.
    let shape = kernels::knn::DistanceShape { testing: 512, reference: 2048, features: 32 };
    let (untiled, tiled) = untiled_tiled_pair(
        &cfg,
        &kernels::knn::Untiled { shape },
        &kernels::knn::Tiled::bandwidth(shape, 32, 32),
    );
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let reduction = tiled.reduction_vs(&untiled);
    let check = Check::new("bandwidth reduction from tiling (%)", 93.9, reduction);
    check.print();
    ExperimentReport {
        id: "fig02".into(),
        title: "k-NN distance bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 4: k-Means distance bandwidth (k = 64), untiled vs tiled.
#[must_use]
pub fn fig04_kmeans_tiling() -> ExperimentReport {
    banner("fig04", "k-Means distance bandwidth (k = 64), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::kmeans::KMeansShape { instances: 4096, centroids: 64, features: 32 };
    let (untiled, tiled) = untiled_tiled_pair(
        &cfg,
        &kernels::kmeans::Untiled { shape },
        &kernels::kmeans::Tiled { shape, tc: 32, tn: 32 },
    );
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 92.5, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig04".into(),
        title: "k-Means distance bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 5: DNN feedforward bandwidth (Na = 16384), untiled vs tiled.
#[must_use]
pub fn fig05_dnn_tiling() -> ExperimentReport {
    banner("fig05", "DNN feedforward bandwidth (Na = 16384), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::dnn::LayerShape { inputs: 16384, outputs: 256 };
    let (untiled, tiled) = untiled_tiled_pair(
        &cfg,
        &kernels::dnn::Untiled { shape },
        &kernels::dnn::Tiled { shape, t: 4096 },
    );
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 46.7, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig05".into(),
        title: "DNN feedforward bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 8: LR prediction bandwidth (d = 16384), untiled vs tiled.
#[must_use]
pub fn fig08_lr_tiling() -> ExperimentReport {
    banner("fig08", "LR prediction bandwidth (d = 16384), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::linreg::LinRegShape { coefficients: 16384, instances: 256 };
    let (untiled, tiled) = untiled_tiled_pair(
        &cfg,
        &kernels::linreg::Untiled { shape },
        &kernels::linreg::Tiled { shape, t: 4096 },
    );
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 46.7, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig08".into(),
        title: "LR prediction bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 9: SVM kernel-matrix bandwidth (d = 32), untiled vs tiled.
#[must_use]
pub fn fig09_svm_tiling() -> ExperimentReport {
    banner("fig09", "SVM kernel-matrix bandwidth (d = 32), untiled vs tiled");
    let cfg = CacheConfig::paper_default();
    let shape = kernels::svm::KernelMatrixShape { train: 2048, features: 32 };
    let (untiled, tiled) = untiled_tiled_pair(
        &cfg,
        &kernels::svm::Untiled { shape },
        &kernels::svm::Tiled { shape, ti: 32, tj: 32 },
    );
    series_row("untiled bandwidth", untiled.gb_per_s(), "GB/s");
    series_row("tiled bandwidth", tiled.gb_per_s(), "GB/s");
    let check =
        Check::new("bandwidth reduction from tiling (%)", 93.9, tiled.reduction_vs(&untiled));
    check.print();
    ExperimentReport {
        id: "fig09".into(),
        title: "SVM kernel-matrix bandwidth vs tiling".into(),
        checks: vec![check],
    }
}

/// Figure 10: per-variable reuse-distance clustering.
///
/// This figure finishes in ~15 ms, so it deliberately stays on the plain
/// hash-map [`ReuseProfiler`] run sequentially: an Olken-style tree (or
/// parallel points) would complicate the instrumentation for no
/// measurable `repro_all` win. The two traces do share one profiler via
/// [`Workload::profile`], reusing its slot-table allocation.
#[must_use]
pub fn fig10_reuse_distance() -> ExperimentReport {
    banner("fig10", "reuse-distance classes (tiled k-NN vs NB training)");
    let mut profiler = ReuseProfiler::new(4);
    // (a) tiled k-NN distance calculations: 3 classes.
    let shape = kernels::knn::DistanceShape { testing: 96, reference: 96, features: 32 };
    let knn = kernels::knn::Tiled::reuse(shape, 32, 32).profile(&mut profiler);
    let knn_classes = knn.classes(3.0);
    for (i, c) in knn_classes.iter().enumerate() {
        series_row(
            &format!("k-NN class {i} mean distance"),
            (c.min_distance + c.max_distance) / 2.0,
            &format!("instructions ({} vars)", c.members),
        );
    }
    // (b) NB training: 2 classes (instance data at ~1; counters spread).
    let nb_shape = kernels::nb::NbShape { instances: 512, features: 8, values: 4, classes: 5 };
    let nb = kernels::nb::Training { shape: nb_shape, seed: 42 }.profile(&mut profiler);
    let nb_classes = nb.classes(8.0);
    for (i, c) in nb_classes.iter().enumerate() {
        series_row(
            &format!("NB class {i} mean distance"),
            (c.min_distance + c.max_distance) / 2.0,
            &format!("instructions ({} vars)", c.members),
        );
    }
    let c1 = Check::new("tiled k-NN reuse-distance classes", 3.0, knn_classes.len() as f64);
    // The paper reports 2 classes; our finer-grained trace also separates
    // the candidate-value table, so >= 2 is the faithful statement.
    let c2 = Check::new("NB training reuse-distance classes (>=)", 2.0, nb_classes.len() as f64);
    c1.print();
    c2.print();
    ExperimentReport {
        id: "fig10".into(),
        title: "reuse-distance clustering".into(),
        checks: vec![c1, c2],
    }
}
