//! Device-neutral workload characterisation of the 13 phases.

use pudiannao_codegen::phases::{Phase, Workload};

/// Useful arithmetic and compulsory memory traffic of one phase — the
/// quantities a roofline model needs. Device-specific inefficiencies
/// (cache misses beyond compulsory, divergence, sort passes) live in the
/// per-device efficiency factors, not here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseCharacter {
    /// Floating-point (or compare/count) operations.
    pub flops: f64,
    /// Compulsory bytes moved (each operand touched once).
    pub bytes: f64,
}

fn dnn_flops_per_instance(layers: &[usize]) -> f64 {
    layers.windows(2).map(|p| 2.0 * p[0] as f64 * p[1] as f64).sum()
}

fn dnn_weight_bytes(layers: &[usize]) -> f64 {
    layers.windows(2).map(|p| 4.0 * p[0] as f64 * p[1] as f64).sum()
}

/// Characterises a phase at the given workload sizes.
#[must_use]
pub fn characterize(phase: Phase, w: &Workload) -> PhaseCharacter {
    let f4 = 4.0; // bytes per f32
    match phase {
        Phase::KnnPrediction => {
            let pairs = w.train as f64 * w.test as f64;
            PhaseCharacter {
                // sub + mul + add per feature pair, plus the top-k
                // maintenance per pair.
                flops: pairs * (3.0 * w.features as f64 + f64::from(w.knn_k).log2().ceil()),
                bytes: (w.train + w.test) as f64 * w.features as f64 * f4
                    + w.test as f64 * f64::from(w.knn_k) * 2.0 * f4,
            }
        }
        Phase::KMeansClustering => {
            let pairs = w.train as f64 * w.kmeans_k as f64 * w.kmeans_iters as f64;
            PhaseCharacter {
                flops: pairs * 3.0 * w.features as f64,
                bytes: (w.train + w.kmeans_k) as f64
                    * w.features as f64
                    * f4
                    * w.kmeans_iters as f64,
            }
        }
        Phase::DnnPrediction => PhaseCharacter {
            flops: dnn_flops_per_instance(&w.dnn_layers) * w.test as f64,
            bytes: dnn_weight_bytes(&w.dnn_layers) + w.test as f64 * w.dnn_layers[0] as f64 * f4,
        },
        Phase::DnnPretraining => PhaseCharacter {
            // CD-1: three propagations plus the outer-product update.
            flops: dnn_flops_per_instance(&w.dnn_layers) * w.train as f64 * 4.0,
            bytes: dnn_weight_bytes(&w.dnn_layers) * 2.0
                + w.train as f64 * w.dnn_layers[0] as f64 * f4,
        },
        Phase::DnnGlobalTraining => PhaseCharacter {
            // BP: forward, backward, update.
            flops: dnn_flops_per_instance(&w.dnn_layers) * w.train as f64 * 3.0,
            bytes: dnn_weight_bytes(&w.dnn_layers) * 2.0
                + w.train as f64 * w.dnn_layers[0] as f64 * f4,
        },
        Phase::LrTraining => PhaseCharacter {
            // Dot sweep + gradient sweep per epoch.
            flops: 4.0 * w.train as f64 * w.features as f64,
            bytes: w.train as f64 * w.features as f64 * f4,
        },
        Phase::LrPrediction => PhaseCharacter {
            flops: 2.0 * w.test as f64 * w.features as f64,
            bytes: w.test as f64 * w.features as f64 * f4,
        },
        Phase::SvmTraining => {
            let pairs = w.train as f64 * w.train as f64;
            PhaseCharacter {
                // Kernel matrix: distance + exp per pair.
                flops: pairs * (3.0 * w.features as f64 + 8.0),
                bytes: w.train as f64 * w.features as f64 * f4 + pairs * f4,
            }
        }
        Phase::SvmPrediction => {
            let svs = (w.train as f64 * w.sv_fraction).max(1.0);
            let pairs = svs * w.test as f64;
            PhaseCharacter {
                flops: pairs * (3.0 * w.features as f64 + 8.0) + 2.0 * pairs,
                bytes: (svs + w.test as f64) * w.features as f64 * f4,
            }
        }
        Phase::NbTraining => PhaseCharacter {
            // One compare per (instance, feature, value) plus a counter
            // update per (instance, feature).
            flops: w.nb_instances as f64 * w.nb_features as f64 * (w.nb_values as f64 + 1.0),
            bytes: w.nb_instances as f64 * (w.nb_features + 1) as f64 * f4,
        },
        Phase::NbPrediction => PhaseCharacter {
            flops: w.nb_instances as f64 * w.nb_classes as f64 * (w.nb_features + 1) as f64,
            bytes: w.nb_instances as f64 * w.nb_classes as f64 * (w.nb_features + 1) as f64 * f4,
        },
        Phase::CtTraining => PhaseCharacter {
            // Per level: compare every instance's features against the
            // candidate thresholds.
            flops: f64::from(w.ct_depth)
                * w.ct_train as f64
                * w.ct_features as f64
                * w.ct_thresholds as f64,
            bytes: f64::from(w.ct_depth) * w.ct_train as f64 * w.ct_features as f64 * f4,
        },
        Phase::CtPrediction => PhaseCharacter {
            flops: w.ct_test as f64 * f64::from(w.ct_depth) * 2.0,
            bytes: w.ct_test as f64 * w.ct_features as f64 * f4
                + (1u64 << w.ct_depth) as f64 * 16.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phases_characterise_positively() {
        let w = Workload::paper();
        for phase in Phase::ALL {
            let c = characterize(phase, &w);
            assert!(c.flops > 0.0, "{phase}");
            assert!(c.bytes > 0.0, "{phase}");
        }
    }

    #[test]
    fn heavyweight_phases_rank_correctly() {
        let w = Workload::paper();
        // ~60000^2 x (3 x 784 + 8) = 8.5e12.
        let svm = characterize(Phase::SvmTraining, &w).flops;
        assert!(svm > 8.0e12 && svm < 9.0e12, "{svm:e}");
        // DNN pre-training (4 passes over a ~51M-synapse net x 60000
        // instances) is the largest phase by raw arithmetic.
        let pre = characterize(Phase::DnnPretraining, &w).flops;
        for phase in Phase::ALL {
            assert!(pre >= characterize(phase, &w).flops, "{phase}");
        }
    }

    #[test]
    fn nb_phases_are_tiny_by_comparison() {
        let w = Workload::paper();
        let nb = characterize(Phase::NbTraining, &w).flops;
        let knn = characterize(Phase::KnnPrediction, &w).flops;
        assert!(nb < knn / 1e3);
    }

    #[test]
    fn dnn_passes_order() {
        let w = Workload::paper();
        let pred = characterize(Phase::DnnPrediction, &w).flops;
        let pre = characterize(Phase::DnnPretraining, &w).flops;
        let train = characterize(Phase::DnnGlobalTraining, &w).flops;
        assert!(pre > train && train > pred);
    }
}
