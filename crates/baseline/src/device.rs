//! Device models and per-phase efficiency factors.

use crate::character::PhaseCharacter;
use pudiannao_codegen::phases::Phase;

/// Which baseline device a model describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA K20M (the paper's main baseline).
    GpuK20m,
    /// Intel Xeon E5-4620 with 256-bit SIMD (the Figure-13 reference).
    CpuE5_4620,
}

/// A roofline device model.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Device identity.
    pub kind: DeviceKind,
    /// Peak single-precision throughput in flop/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Power floor in watts (always burned while the phase runs).
    pub power_base: f64,
    /// Additional power at full compute activity, in watts.
    pub power_dynamic: f64,
    /// Fixed per-phase overhead in seconds (kernel launches, host sync).
    pub launch_overhead: f64,
}

/// The NVIDIA K20M: 3.52 TFlops SP peak, 208 GB/s GDDR5 (Section 5).
///
/// The power split is calibrated so that phase-average board power lands
/// in the 55-110 W range — consistent with the paper's reported 128.41x
/// average energy ratio against PuDianNao's 596 mW at a 1.20x average
/// speedup (which implies ~64 W average GPU power during these kernels,
/// i.e. measured dynamic power well below the 225 W TDP).
#[must_use]
pub fn gpu_k20m() -> DeviceModel {
    DeviceModel {
        kind: DeviceKind::GpuK20m,
        peak_flops: 3.52e12,
        mem_bandwidth: 208.0e9,
        power_base: 40.0,
        power_dynamic: 110.0,
        launch_overhead: 5.0e-6,
    }
}

/// The Xeon E5-4620: 8 Sandy Bridge cores at 2.2 GHz with 256-bit AVX
/// (8-wide FMA-less: 8 adds + 8 muls per cycle per core => ~281 GFlops),
/// ~40 GB/s of DDR3 bandwidth, 95 W TDP.
#[must_use]
pub fn cpu_e5_4620() -> DeviceModel {
    DeviceModel {
        kind: DeviceKind::CpuE5_4620,
        peak_flops: 281.6e9,
        mem_bandwidth: 40.0e9,
        power_base: 45.0,
        power_dynamic: 50.0,
        launch_overhead: 0.0,
    }
}

/// Per-phase achievable fractions of a device's roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseEfficiency {
    /// Fraction of peak compute achieved on the arithmetic.
    pub compute: f64,
    /// Fraction of peak bandwidth achieved on the traffic.
    pub bandwidth: f64,
    /// Work inflation: extra passes/operations the device needs beyond
    /// the useful work (e.g. GPU top-k selection passes).
    pub work_multiplier: f64,
}

/// Per-phase efficiency factors for each device.
///
/// These encode the architectural story behind Figures 13, 15 and 16:
///
/// - **k-NN**: distance computation maps well to the GPU, but top-k
///   selection costs extra passes and consumes "remarkable energy on
///   sorting with its general-purpose functional units".
/// - **NB/CT training**: histogram counting serialises on atomic updates
///   and diverges; both baselines run far below peak.
/// - **NB prediction**: plain register-resident products — the GPU's
///   "large register file" makes this its *best* phase (PuDianNao's
///   worst, 0.37x).
/// - **SVM prediction**: transcendental kernel functions and scattered
///   support-vector access; PuDianNao's interpolation unit wins (2.92x).
/// - **CT prediction**: divergent pointer chasing.
#[must_use]
pub fn efficiency(kind: DeviceKind, phase: Phase) -> PhaseEfficiency {
    let (compute, bandwidth, work_multiplier) = match kind {
        DeviceKind::GpuK20m => match phase {
            // Distance kernels vectorise well, but k-selection over
            // 60000 candidates costs multiple extra passes (the paper:
            // "the GPU consumes remarkable energy on sorting").
            Phase::KnnPrediction => (0.323, 0.60, 2.93),
            // Only k = 10 centroids: reduction-dominated, poorly occupied.
            Phase::KMeansClustering => (0.22, 0.185, 1.2),
            // Batched GEMM + activation; K20-era cuBLAS on tall-skinny
            // shapes with fused sigmoids.
            Phase::DnnPrediction => (0.285, 0.65, 1.0),
            Phase::DnnPretraining => (0.28, 0.65, 1.1),
            Phase::DnnGlobalTraining => (0.28, 0.65, 1.1),
            // GEMV-like: bandwidth-bound.
            Phase::LrTraining => (0.30, 0.45, 1.1),
            Phase::LrPrediction => (0.30, 0.50, 1.0),
            // Kernel-matrix computation with exp and a 14 GB result.
            Phase::SvmTraining => (0.155, 0.55, 1.1),
            // Transcendental kernel functions on scattered support
            // vectors — PuDianNao's interpolation unit wins 2.92x here.
            Phase::SvmPrediction => (0.0604, 0.40, 1.45),
            // Histogram counting: atomic serialisation and divergence.
            Phase::NbTraining => (0.06, 0.50, 1.5),
            // Register-resident probability products: the GPU's best
            // phase (PuDianNao's worst, 0.37x).
            Phase::NbPrediction => (0.50, 0.95, 1.0),
            Phase::CtTraining => (0.08, 0.30, 1.3),
            // Divergent pointer chasing at ~5% of effective bandwidth.
            Phase::CtPrediction => (0.04, 0.045, 1.5),
        },
        // Multicore AVX C++ rarely sustains more than 10-25% of peak on
        // these kernels (gather-heavy, short vectors, atomics); these
        // factors put the GPU 10-30x ahead phase by phase, matching the
        // Figure-13 average of 17.74x and the 15-49x / 10-60x surveys the
        // paper cites.
        DeviceKind::CpuE5_4620 => match phase {
            Phase::KnnPrediction => (0.08, 0.30, 1.3),
            Phase::KMeansClustering => (0.08, 0.30, 1.1),
            Phase::DnnPrediction => (0.11, 0.30, 1.0),
            Phase::DnnPretraining => (0.11, 0.30, 1.1),
            Phase::DnnGlobalTraining => (0.11, 0.30, 1.1),
            Phase::LrTraining => (0.09, 0.30, 1.1),
            Phase::LrPrediction => (0.09, 0.30, 1.0),
            Phase::SvmTraining => (0.09, 0.30, 1.1),
            Phase::SvmPrediction => (0.022, 0.21, 1.2),
            Phase::NbTraining => (0.022, 0.18, 1.2),
            Phase::NbPrediction => (0.08, 0.27, 1.0),
            Phase::CtTraining => (0.032, 0.21, 1.2),
            Phase::CtPrediction => (0.016, 0.12, 1.2),
        },
    };
    PhaseEfficiency { compute, bandwidth, work_multiplier }
}

/// Time and energy a device spends on a characterised phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceEstimate {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub joules: f64,
    /// Whether the compute roof (true) or memory roof (false) bound the
    /// phase.
    pub compute_bound: bool,
}

/// Applies the roofline: `t = max(work / (peak x eff), bytes / (bw x
/// eff))`, energy from the base/dynamic power split weighted by how
/// compute-bound the phase is.
#[must_use]
pub fn estimate(
    device: &DeviceModel,
    eff: &PhaseEfficiency,
    character: &PhaseCharacter,
) -> DeviceEstimate {
    let work = character.flops * eff.work_multiplier;
    let t_compute = work / (device.peak_flops * eff.compute);
    let t_memory = character.bytes / (device.mem_bandwidth * eff.bandwidth);
    let seconds = t_compute.max(t_memory) + device.launch_overhead;
    let compute_bound = t_compute >= t_memory;
    // Dynamic power follows whichever subsystem is working: the compute
    // units (including wasted selection/divergence passes, hence the
    // work multiplier) or the memory system (weighted at half — DRAM
    // burns less than the SMs).
    let compute_util =
        eff.compute * eff.work_multiplier * if compute_bound { 1.0 } else { t_compute / t_memory };
    let memory_util =
        0.5 * eff.bandwidth * if compute_bound { t_memory / t_compute.max(1e-30) } else { 1.0 };
    let activity = compute_util.max(memory_util).clamp(0.0, 1.0);
    let power = device.power_base + device.power_dynamic * activity;
    DeviceEstimate { seconds, joules: power * seconds, compute_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::character::characterize;
    use pudiannao_codegen::phases::Workload;

    #[test]
    fn device_constants() {
        let gpu = gpu_k20m();
        assert_eq!(gpu.peak_flops, 3.52e12);
        assert_eq!(gpu.mem_bandwidth, 208.0e9);
        let cpu = cpu_e5_4620();
        assert!(gpu.peak_flops / cpu.peak_flops > 10.0);
    }

    #[test]
    fn gpu_beats_cpu_on_every_phase() {
        let w = Workload::paper();
        for phase in Phase::ALL {
            let c = characterize(phase, &w);
            let g = estimate(&gpu_k20m(), &efficiency(DeviceKind::GpuK20m, phase), &c);
            let p = estimate(&cpu_e5_4620(), &efficiency(DeviceKind::CpuE5_4620, phase), &c);
            assert!(p.seconds > g.seconds, "{phase}: GPU should win");
        }
    }

    #[test]
    fn gpu_over_cpu_average_matches_figure13_band() {
        // Figure 13: average 17.74x, and the paper cites 15-49x / 10-60x
        // surveys. Check our geometric mean lands in a sane band.
        let w = Workload::paper();
        let mut log_sum = 0.0;
        for phase in Phase::ALL {
            let c = characterize(phase, &w);
            let g = estimate(&gpu_k20m(), &efficiency(DeviceKind::GpuK20m, phase), &c);
            let p = estimate(&cpu_e5_4620(), &efficiency(DeviceKind::CpuE5_4620, phase), &c);
            log_sum += (p.seconds / g.seconds).ln();
        }
        let geo_mean = (log_sum / 13.0).exp();
        assert!(
            (8.0..30.0).contains(&geo_mean),
            "GPU/CPU geometric-mean speedup {geo_mean:.1} outside the Figure-13 band"
        );
    }

    #[test]
    fn memory_bound_phases_are_detected() {
        let c = PhaseCharacter { flops: 1.0, bytes: 1e12 };
        let eff = PhaseEfficiency { compute: 1.0, bandwidth: 1.0, work_multiplier: 1.0 };
        let e = estimate(&gpu_k20m(), &eff, &c);
        assert!(!e.compute_bound);
        let c2 = PhaseCharacter { flops: 1e15, bytes: 1.0 };
        assert!(estimate(&gpu_k20m(), &eff, &c2).compute_bound);
    }

    #[test]
    fn energy_is_power_times_time() {
        let c = PhaseCharacter { flops: 3.52e12, bytes: 1.0 };
        let eff = PhaseEfficiency { compute: 1.0, bandwidth: 1.0, work_multiplier: 1.0 };
        let e = estimate(&gpu_k20m(), &eff, &c);
        // 1 second at full activity: base + dynamic watts.
        assert!((e.seconds - (1.0 + 5.0e-6)).abs() < 1e-6);
        assert!((e.joules - 150.0 * e.seconds).abs() < 1e-3);
    }
}
