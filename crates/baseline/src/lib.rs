//! Analytical baseline models for the PuDianNao evaluation.
//!
//! The paper compares PuDianNao against an NVIDIA K20M GPU ("3.52 TFlops
//! peak, 5GB GDDR5, 208GB/s memory bandwidth, 28nm technology, CUDA
//! SDK5.5") and validates that GPU against a 256-bit-SIMD Xeon E5-4620
//! (Figure 13: the GPU averages 17.74x over the CPU, in line with the
//! 15-49x and 10-60x ranges the paper cites). We cannot run that
//! hardware, so this crate models both devices with a roofline: each
//! phase's useful arithmetic and compulsory memory traffic
//! ([`PhaseCharacter`]) meet per-device, per-phase efficiency factors
//! ([`efficiency`]) that encode the *architectural* reasons a phase runs
//! well or badly — GPU sorting overhead on k-NN, atomic-update counting
//! for NB/CT training, divergent tree walks, transcendental-heavy SVM
//! prediction. The factors are first-principles estimates, documented
//! inline; EXPERIMENTS.md compares the resulting shape against the
//! paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod character;
mod device;

pub use character::{characterize, PhaseCharacter};
pub use device::{
    cpu_e5_4620, efficiency, estimate, gpu_k20m, DeviceEstimate, DeviceKind, DeviceModel,
    PhaseEfficiency,
};
