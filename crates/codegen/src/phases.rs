//! The 13 benchmark phases (Table 4 + footnote 4) and their accelerator
//! cost models.
//!
//! "Many ML techniques have two phases each (training and prediction
//! phases), but k-NN and k-Means only have one phase, and DNN has two
//! different training phases, pre-training and global training" — giving
//! the 13 x-axis points of Figures 15 and 16.
//!
//! For each phase, [`model_phase`] computes full-paper-scale execution
//! statistics by aggregating the *same* per-instruction timing formulas
//! the functional executor charges ([`pudiannao_accel::timing`]): small
//! phases generate and cost their real programs; the huge ones (k-NN's
//! ~10^14 MACs) cost one representative block and scale by the block
//! count, which is exact for uniform bodies and within one ragged block
//! otherwise. An integration test pins the model to functionally executed
//! programs at small scale.

use crate::ct::{CtCountKernel, CtCountPlan, TreeWalkKernel, TreeWalkPlan};
use crate::distance::{DistanceKernel, DistancePlan, DistancePost};
use crate::dot::{BatchedMatmul, BroadcastDot, BroadcastPlan, MatmulPlan};
use crate::error::CodegenError;
use crate::nb::{NbPredictKernel, NbPredictPlan, NbTrainKernel, NbTrainPlan};
use core::fmt;
use pudiannao_accel::isa::Program;
use pudiannao_accel::{
    charge_fetch, charge_instruction, timing, ArchConfig, EnergyModel, ExecStats, MluStage,
    StageCycles,
};
use pudiannao_softfp::NonLinearFn;

/// One of the 13 evaluated phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// k-NN prediction (its only phase).
    KnnPrediction,
    /// k-Means clustering (its only phase; one Lloyd iteration).
    KMeansClustering,
    /// DNN feedforward over the testing set.
    DnnPrediction,
    /// DNN RBM pre-training epoch over the training set.
    DnnPretraining,
    /// DNN back-propagation epoch over the training set.
    DnnGlobalTraining,
    /// Linear-regression gradient-descent epoch.
    LrTraining,
    /// Linear-regression prediction.
    LrPrediction,
    /// SVM SMO training (kernel-matrix computation).
    SvmTraining,
    /// SVM prediction over the testing set.
    SvmPrediction,
    /// Naive-Bayes training (counting).
    NbTraining,
    /// Naive-Bayes prediction (probability products).
    NbPrediction,
    /// Classification-tree (ID3) training (threshold counting).
    CtTraining,
    /// Classification-tree prediction (tree walk).
    CtPrediction,
}

impl Phase {
    /// All 13 phases in Figure-15 order.
    pub const ALL: [Phase; 13] = [
        Phase::KnnPrediction,
        Phase::KMeansClustering,
        Phase::DnnPrediction,
        Phase::DnnPretraining,
        Phase::DnnGlobalTraining,
        Phase::LrTraining,
        Phase::LrPrediction,
        Phase::SvmTraining,
        Phase::SvmPrediction,
        Phase::NbTraining,
        Phase::NbPrediction,
        Phase::CtTraining,
        Phase::CtPrediction,
    ];

    /// Short label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::KnnPrediction => "kNN",
            Phase::KMeansClustering => "k-Means",
            Phase::DnnPrediction => "DNN-pred",
            Phase::DnnPretraining => "DNN-pre",
            Phase::DnnGlobalTraining => "DNN-train",
            Phase::LrTraining => "LR-train",
            Phase::LrPrediction => "LR-pred",
            Phase::SvmTraining => "SVM-train",
            Phase::SvmPrediction => "SVM-pred",
            Phase::NbTraining => "NB-train",
            Phase::NbPrediction => "NB-pred",
            Phase::CtTraining => "CT-train",
            Phase::CtPrediction => "CT-pred",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Benchmark problem sizes (Table 4) plus the modelling assumptions the
/// paper leaves implicit.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// MNIST training / reference instances.
    pub train: usize,
    /// MNIST testing instances.
    pub test: usize,
    /// MNIST feature dimensionality.
    pub features: usize,
    /// k for k-NN (20).
    pub knn_k: u32,
    /// k-Means cluster count (10).
    pub kmeans_k: usize,
    /// Lloyd iterations modelled for the k-Means phase.
    pub kmeans_iters: usize,
    /// DNN layer widths, input first (784, 4096 x 4, 10).
    pub dnn_layers: Vec<usize>,
    /// Instance batch held in HotBuf during DNN passes.
    pub dnn_batch: usize,
    /// Fraction of training instances that end up support vectors
    /// (assumption: 0.1; the paper does not report the count).
    pub sv_fraction: f64,
    /// UCI-Nursery instances.
    pub nb_instances: usize,
    /// UCI-Nursery features (8).
    pub nb_features: usize,
    /// Values per NB feature (5).
    pub nb_values: usize,
    /// NB classes (5).
    pub nb_classes: usize,
    /// Covertype training instances (522000).
    pub ct_train: usize,
    /// Covertype testing instances (59012).
    pub ct_test: usize,
    /// Covertype features (54).
    pub ct_features: usize,
    /// Modelled ID3 tree depth (assumption: 12 levels).
    pub ct_depth: u32,
    /// Candidate thresholds per feature during training.
    pub ct_thresholds: usize,
}

impl Workload {
    /// Full Table-4 sizes.
    #[must_use]
    pub fn paper() -> Workload {
        Workload {
            train: 60000,
            test: 10000,
            features: 784,
            knn_k: 20,
            kmeans_k: 10,
            kmeans_iters: 1,
            dnn_layers: vec![784, 4096, 4096, 4096, 4096, 10],
            dnn_batch: 64,
            sv_fraction: 0.1,
            nb_instances: 12960,
            nb_features: 8,
            nb_values: 5,
            nb_classes: 5,
            ct_train: 522_000,
            ct_test: 59012,
            ct_features: 54,
            ct_depth: 12,
            ct_thresholds: 16,
        }
    }

    /// Sizes divided by `factor` (minimums keep every phase legal) — used
    /// by tests that functionally execute the modelled programs.
    #[must_use]
    pub fn scaled(factor: usize) -> Workload {
        let f = factor.max(1);
        let p = Workload::paper();
        Workload {
            train: (p.train / f).max(64),
            test: (p.test / f).max(32),
            features: (p.features / f).max(16),
            knn_k: p.knn_k.min(8),
            kmeans_k: p.kmeans_k,
            kmeans_iters: 1,
            dnn_layers: p.dnn_layers.iter().map(|&w| (w / f).max(8)).collect(),
            dnn_batch: p.dnn_batch,
            sv_fraction: p.sv_fraction,
            nb_instances: (p.nb_instances / f).max(64),
            nb_features: p.nb_features,
            nb_values: p.nb_values,
            nb_classes: p.nb_classes,
            ct_train: (p.ct_train / f).max(64),
            ct_test: (p.ct_test / f).max(64),
            ct_features: p.ct_features.min(16),
            ct_depth: 8,
            ct_thresholds: p.ct_thresholds,
        }
    }
}

/// Sums the timing model over a program without functional execution —
/// cheap per instruction, identical cycle accounting to
/// [`pudiannao_accel::Accelerator::run`].
#[must_use]
pub fn program_stats(cfg: &ArchConfig, program: &Program) -> ExecStats {
    let energy = EnergyModel::new(cfg);
    let mut stats = ExecStats::default();
    // Fetch and per-instruction accounting go through the accel crate's
    // shared charge helpers — the same code `Accelerator::run` charges —
    // so the analytic and functional paths cannot drift (additionally
    // pinned by the model-vs-execution integration test).
    charge_fetch(cfg, &mut stats, program.len() as u64);
    let mut first = true;
    for inst in program.instructions() {
        let t = timing::instruction_timing(cfg, inst).expect("generated programs always decode");
        let overlapped = !first && cfg.double_buffering;
        first = false;
        charge_instruction(&energy, &mut stats, &t, overlapped);
    }
    stats
}

fn scale_stats(s: &ExecStats, factor: f64) -> ExecStats {
    let scale_u = |v: u64| -> u64 { (v as f64 * factor).round() as u64 };
    let mut energy = s.energy;
    energy.fus *= factor;
    energy.hotbuf *= factor;
    energy.coldbuf *= factor;
    energy.outputbuf *= factor;
    energy.control *= factor;
    energy.other *= factor;
    let mut stage_cycles = StageCycles::default();
    for stage in MluStage::ALL {
        *stage_cycles.get_mut(stage) = scale_u(s.stage_cycles.get(stage));
    }
    // Per-stage rounding can drift the stage total a few cycles from the
    // independently scaled compute total; reconcile on the busiest stage
    // so `stage_cycles.total() == compute_cycles` stays an invariant.
    let compute_cycles = scale_u(s.compute_cycles);
    if let Some(&busiest) = MluStage::ALL.iter().max_by_key(|&&stage| stage_cycles.get(stage)) {
        let total = stage_cycles.total();
        let slot = stage_cycles.get_mut(busiest);
        *slot = (*slot + compute_cycles).saturating_sub(total);
    }
    ExecStats {
        cycles: scale_u(s.cycles),
        instructions: scale_u(s.instructions),
        compute_cycles,
        dma_cycles: scale_u(s.dma_cycles),
        dma_bytes: scale_u(s.dma_bytes),
        mlu_ops: scale_u(s.mlu_ops),
        alu_ops: scale_u(s.alu_ops),
        energy,
        stage_cycles,
        dma_regular_descriptors: scale_u(s.dma_regular_descriptors),
        dma_reconfig_descriptors: scale_u(s.dma_reconfig_descriptors),
        dma_stall_cycles: scale_u(s.dma_stall_cycles),
        fault_overhead_cycles: scale_u(s.fault_overhead_cycles),
    }
}

fn sub_stats(a: &ExecStats, b: &ExecStats) -> ExecStats {
    let sub_u = |x: u64, y: u64| x.saturating_sub(y);
    let mut energy = a.energy;
    energy.fus -= b.energy.fus;
    energy.hotbuf -= b.energy.hotbuf;
    energy.coldbuf -= b.energy.coldbuf;
    energy.outputbuf -= b.energy.outputbuf;
    energy.control -= b.energy.control;
    energy.other -= b.energy.other;
    let mut stage_cycles = StageCycles::default();
    for stage in MluStage::ALL {
        *stage_cycles.get_mut(stage) = sub_u(a.stage_cycles.get(stage), b.stage_cycles.get(stage));
    }
    ExecStats {
        cycles: sub_u(a.cycles, b.cycles),
        instructions: sub_u(a.instructions, b.instructions),
        compute_cycles: sub_u(a.compute_cycles, b.compute_cycles),
        dma_cycles: sub_u(a.dma_cycles, b.dma_cycles),
        dma_bytes: sub_u(a.dma_bytes, b.dma_bytes),
        mlu_ops: sub_u(a.mlu_ops, b.mlu_ops),
        alu_ops: sub_u(a.alu_ops, b.alu_ops),
        energy,
        stage_cycles,
        dma_regular_descriptors: sub_u(a.dma_regular_descriptors, b.dma_regular_descriptors),
        dma_reconfig_descriptors: sub_u(a.dma_reconfig_descriptors, b.dma_reconfig_descriptors),
        dma_stall_cycles: sub_u(a.dma_stall_cycles, b.dma_stall_cycles),
        fault_overhead_cycles: sub_u(a.fault_overhead_cycles, b.fault_overhead_cycles),
    }
}

/// Costs a distance-style phase from a generated prefix: the first cold
/// block carries startup costs (hot-set load, un-overlapped first DMA);
/// steady-state blocks are measured as the difference between a
/// three-block and a one-block program, so double-buffering and the
/// resident-hot READ pattern are accounted exactly.
fn distance_phase_stats(
    cfg: &ArchConfig,
    kernel: &DistanceKernel,
) -> Result<ExecStats, CodegenError> {
    let tiling = kernel.tiling(cfg)?;
    let plan = DistancePlan { hot_dram: 0, cold_dram: 1 << 40, out_dram: 1 << 41 };
    let blocks = kernel.cold_rows.div_ceil(tiling.cold_block);
    let gen = |n_blocks: usize| -> Result<ExecStats, CodegenError> {
        let prefix = DistanceKernel {
            cold_rows: (n_blocks * tiling.cold_block).min(kernel.cold_rows),
            ..kernel.clone()
        };
        Ok(program_stats(cfg, &prefix.generate(cfg, &plan)?))
    };
    let p1 = gen(1)?;
    if blocks <= 1 {
        return Ok(p1);
    }
    let n = blocks.min(3);
    let pn = gen(n)?;
    let steady = scale_stats(&sub_stats(&pn, &p1), 1.0 / (n - 1) as f64);
    let mut total = p1;
    total.merge(&scale_stats(&steady, (blocks - 1) as f64));
    Ok(total)
}

/// Costs a pairwise kernel computation (SVM kernel matrix) whose hot set
/// does not stay resident: hot blocks stream per cold block, results
/// stream out block-tiled.
fn pairwise_kernel_stats(
    cfg: &ArchConfig,
    features: usize,
    hot_rows: usize,
    cold_rows: usize,
) -> Result<ExecStats, CodegenError> {
    use pudiannao_accel::isa::{BufferRead, FuOps, Instruction, MiscOp, OutputSlot};
    let hot_half = cfg.hotbuf_elems() as usize / 2;
    let cold_half = cfg.coldbuf_elems() as usize / 2;
    let out_cap = cfg.outputbuf_elems() as usize;
    if features > hot_half || features > cold_half {
        return Err(CodegenError::RowTooWide { width: features, available: hot_half });
    }
    let hb = (hot_half / features).min(hot_rows).max(1);
    let cb = (cold_half / features).min(out_cap / hb).min(cold_rows).max(1);
    let mut fu = FuOps::distance(None);
    fu.misc = MiscOp::Interp(NonLinearFn::ExpNeg);
    // Per cold block: the first hot block LOADs the cold rows, the
    // remaining hot blocks re-READ them (the Table-3 reuse pattern).
    let mk = |cold_loads: bool| Instruction {
        name: "svm-kernel".into(),
        hot: BufferRead::load(0, 0, features as u32, hb as u32),
        cold: if cold_loads {
            BufferRead::load(1 << 40, 0, features as u32, cb as u32)
        } else {
            BufferRead::read(0, features as u32, cb as u32)
        },
        out: OutputSlot::store(1 << 41, hb as u32, cb as u32),
        fu,
        hot_row_base: 0,
    };
    let hot_blocks = (hot_rows as f64 / hb as f64).ceil();
    let cold_blocks = (cold_rows as f64 / cb as f64).ceil();
    // Steady-state costing: measure each instruction kind inside a
    // two-instruction program so the double-buffered (max of compute and
    // DMA) accounting applies, not the serial first-instruction cost.
    let steady = |inst: Instruction| -> ExecStats {
        let warm = Program::new(vec![mk(false), inst]).expect("non-empty");
        let both = program_stats(cfg, &warm);
        let alone = program_stats(cfg, &Program::new(vec![mk(false)]).expect("non-empty"));
        sub_stats(&both, &alone)
    };
    let first = steady(mk(true));
    let rest = steady(mk(false));
    let mut total = scale_stats(&first, cold_blocks);
    total.merge(&scale_stats(&rest, cold_blocks * (hot_blocks - 1.0).max(0.0)));
    Ok(total)
}

/// Costs one DNN layer pass over `instances` (forward direction), scaled
/// by `passes` (backward and update passes share the structure —
/// footnote 1: "from a computer architecture perspective, they are the
/// same").
fn dnn_layer_stats(
    cfg: &ArchConfig,
    width: usize,
    neurons: usize,
    instances: usize,
    batch: usize,
    passes: f64,
) -> Result<ExecStats, CodegenError> {
    let kernel = BatchedMatmul {
        name: "dnn",
        width,
        batch: batch.min(instances),
        cold_rows: neurons,
        activation: Some(NonLinearFn::Sigmoid),
    };
    let plan = MatmulPlan { hot_dram: 0, cold_dram: 1 << 40, out_dram: 1 << 41 };
    let program = kernel.generate(cfg, &plan)?;
    let per_batch = program_stats(cfg, &program);
    let batches = instances as f64 / kernel.batch as f64;
    Ok(scale_stats(&per_batch, batches * passes))
}

/// Costs a broadcast-dot sweep (LR) over `rows`, scaled by `passes`.
fn lr_sweep_stats(
    cfg: &ArchConfig,
    width: usize,
    rows: usize,
    passes: f64,
) -> Result<ExecStats, CodegenError> {
    let kernel = BroadcastDot { name: "lr", width, cold_rows: rows, activation: None };
    let plan = BroadcastPlan { hot_dram: 0, cold_dram: 1 << 40, out_dram: 1 << 41 };
    let program = kernel.generate(cfg, &plan)?;
    Ok(scale_stats(&program_stats(cfg, &program), passes))
}

/// Computes full-scale execution statistics for a phase.
///
/// # Errors
///
/// Propagates tiling failures (a workload/feature size no legal program
/// exists for).
pub fn model_phase(
    cfg: &ArchConfig,
    phase: Phase,
    w: &Workload,
) -> Result<ExecStats, CodegenError> {
    match phase {
        Phase::KnnPrediction => distance_phase_stats(
            cfg,
            &DistanceKernel {
                name: "k-NN",
                features: w.features,
                hot_rows: w.train,
                cold_rows: w.test,
                post: DistancePost::Sort { k: w.knn_k },
            },
        ),
        Phase::KMeansClustering => {
            let per_iter = distance_phase_stats(
                cfg,
                &DistanceKernel {
                    name: "k-means",
                    features: w.features,
                    hot_rows: w.kmeans_k,
                    cold_rows: w.train,
                    post: DistancePost::Sort { k: 1 },
                },
            )?;
            Ok(scale_stats(&per_iter, w.kmeans_iters as f64))
        }
        Phase::DnnPrediction | Phase::DnnPretraining | Phase::DnnGlobalTraining => {
            let (instances, passes) = match phase {
                Phase::DnnPrediction => (w.test, 1.0),
                // CD-1: v->h, h->v', v'->h', plus the outer-product
                // update streaming W once more.
                Phase::DnnPretraining => (w.train, 4.0),
                // BP: forward, backward delta, weight update.
                _ => (w.train, 3.0),
            };
            let mut total = ExecStats::default();
            for pair in w.dnn_layers.windows(2) {
                total.merge(&dnn_layer_stats(
                    cfg,
                    pair[0],
                    pair[1],
                    instances,
                    w.dnn_batch,
                    passes,
                )?);
            }
            Ok(total)
        }
        Phase::LrTraining => {
            // One GD epoch: the theta.x sweep plus the gradient update
            // sweep (a second streaming pass over X).
            lr_sweep_stats(cfg, w.features, w.train, 2.0)
        }
        Phase::LrPrediction => lr_sweep_stats(cfg, w.features, w.test, 1.0),
        Phase::SvmTraining => {
            // SMO's dominant cost: the N x N kernel matrix.
            pairwise_kernel_stats(cfg, w.features, w.train, w.train)
        }
        Phase::SvmPrediction => {
            let svs = ((w.train as f64 * w.sv_fraction) as usize).max(1);
            // Kernel values between SVs and queries...
            let mut total = pairwise_kernel_stats(cfg, w.features, svs, w.test)?;
            // ...then the alpha-weighted sum per query.
            total.merge(&lr_sweep_stats(cfg, svs, w.test, 1.0)?);
            Ok(total)
        }
        Phase::NbTraining => {
            let per_class = w.nb_instances / w.nb_classes.max(1);
            let kernel = NbTrainKernel {
                features: w.nb_features,
                values: w.nb_values,
                class_counts: vec![per_class; w.nb_classes],
            };
            let plan =
                NbTrainPlan { instances_dram: 0, candidates_dram: 1 << 40, counters_dram: 1 << 41 };
            Ok(program_stats(cfg, &kernel.generate(cfg, &plan)?))
        }
        Phase::NbPrediction => {
            let kernel =
                NbPredictKernel { rows: w.nb_instances * w.nb_classes, width: w.nb_features + 1 };
            let plan = NbPredictPlan { rows_dram: 0, out_dram: 1 << 40 };
            Ok(program_stats(cfg, &kernel.generate(cfg, &plan)?))
        }
        Phase::CtTraining => {
            // Per level: a threshold-counting pass over all training
            // instances (nodes at one level partition the data, so the
            // level's total counting work is one full pass), plus the
            // entropy logs.
            let count = CtCountKernel {
                features: w.ct_features,
                thresholds: w.ct_thresholds,
                instances: w.ct_train,
            };
            let plan =
                CtCountPlan { instances_dram: 0, thresholds_dram: 1 << 40, counters_dram: 1 << 41 };
            let per_level = program_stats(cfg, &count.generate(cfg, &plan)?);
            Ok(scale_stats(&per_level, f64::from(w.ct_depth)))
        }
        Phase::CtPrediction => {
            let kernel =
                TreeWalkKernel { depth: w.ct_depth, features: w.ct_features, instances: w.ct_test };
            let plan = TreeWalkPlan { tree_dram: 0, instances_dram: 1 << 40, states_dram: 1 << 41 };
            Ok(program_stats(cfg, &kernel.generate(cfg, &plan)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phases_model_at_paper_scale() {
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        for phase in Phase::ALL {
            let stats = model_phase(&cfg, phase, &w).unwrap_or_else(|e| {
                panic!("{phase}: {e}");
            });
            assert!(stats.cycles > 0, "{phase}");
            assert!(stats.energy.total() > 0.0, "{phase}");
        }
    }

    #[test]
    fn knn_dominates_lr_prediction() {
        // 60000x10000x784 distance work dwarfs 10000x784 dots.
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        let knn = model_phase(&cfg, Phase::KnnPrediction, &w).unwrap();
        let lr = model_phase(&cfg, Phase::LrPrediction, &w).unwrap();
        assert!(knn.cycles > lr.cycles * 100);
    }

    #[test]
    fn dnn_pretraining_is_the_biggest_phase() {
        // Four CD-1 passes over a ~51M-synapse network x 60000 instances
        // outweighs even the SVM kernel matrix.
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        let pre = model_phase(&cfg, Phase::DnnPretraining, &w).unwrap();
        for phase in Phase::ALL {
            if phase != Phase::DnnPretraining {
                let s = model_phase(&cfg, phase, &w).unwrap();
                assert!(pre.cycles >= s.cycles, "{phase} exceeds DNN pre-training");
            }
        }
    }

    #[test]
    fn ct_prediction_is_dma_reconfig_bound() {
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        let ct = model_phase(&cfg, Phase::CtPrediction, &w).unwrap();
        // The signature inefficiency of the phase: DMA cycles dominate
        // compute cycles.
        assert!(ct.dma_cycles > ct.compute_cycles, "{ct:?}");
    }

    #[test]
    fn average_power_stays_near_table5() {
        let cfg = ArchConfig::paper_default();
        let w = Workload::paper();
        let knn = model_phase(&cfg, Phase::KnnPrediction, &w).unwrap();
        let power = knn.average_power(cfg.freq_hz);
        assert!(
            power > 0.596 * 0.3 && power < 0.65,
            "power {power} W out of range vs the 596 mW budget"
        );
    }

    #[test]
    fn phase_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 13);
        assert_eq!(Phase::KnnPrediction.to_string(), "kNN");
    }

    #[test]
    fn scaled_workload_shrinks_monotonically() {
        let w100 = Workload::scaled(100);
        let paper = Workload::paper();
        assert!(w100.train < paper.train);
        assert!(w100.features <= paper.features);
        let knn_small =
            model_phase(&ArchConfig::paper_default(), Phase::KnnPrediction, &w100).unwrap();
        let knn_full =
            model_phase(&ArchConfig::paper_default(), Phase::KnnPrediction, &paper).unwrap();
        assert!(knn_small.cycles < knn_full.cycles / 1000);
    }
}
