//! Code-generation errors.

use core::fmt;

/// Errors raised while generating a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// A single row does not fit in the relevant buffer half, so no legal
    /// tiling exists.
    RowTooWide {
        /// Row width in elements.
        width: usize,
        /// Available elements.
        available: usize,
    },
    /// The output block would not fit the OutputBuf.
    OutputTooWide {
        /// Required elements.
        required: usize,
        /// Available elements.
        available: usize,
    },
    /// A workload dimension was zero.
    EmptyWorkload,
    /// The requested configuration is not supported by the generator.
    Unsupported(&'static str),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::RowTooWide { width, available } => {
                write!(f, "row of {width} elements exceeds the {available}-element buffer half")
            }
            CodegenError::OutputTooWide { required, available } => {
                write!(f, "output block of {required} elements exceeds OutputBuf ({available})")
            }
            CodegenError::EmptyWorkload => f.write_str("workload has a zero dimension"),
            CodegenError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodegenError::RowTooWide { width: 9000, available: 2048 }
            .to_string()
            .contains("9000"));
        assert!(CodegenError::OutputTooWide { required: 4096, available: 2048 }
            .to_string()
            .contains("OutputBuf"));
        assert_eq!(CodegenError::EmptyWorkload.to_string(), "workload has a zero dimension");
    }
}
