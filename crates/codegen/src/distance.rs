//! Tiled distance-kernel generation: k-NN prediction, k-Means assignment,
//! and SVM kernel evaluations (distance + RBF interpolation).
//!
//! The generated programs follow Table 3's structure: the reused operand
//! set lives in HotBuf (loaded once if it fits a half, otherwise streamed
//! in ping-pong halves), instances stream through ColdBuf halves, and
//! partial results (k-sorter state) accumulate in the OutputBuf until the
//! last hot block stores them to DRAM.

use crate::error::CodegenError;
use pudiannao_accel::isa::{BufferRead, FuOps, Instruction, OutputSlot, Program};
use pudiannao_accel::ArchConfig;
use pudiannao_softfp::NonLinearFn;

/// What happens to each accumulated distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistancePost {
    /// Store the full distance matrix row per cold row.
    Plain,
    /// Keep the k smallest per cold row (k-NN / k-Means assignment).
    Sort {
        /// Neighbours to keep.
        k: u32,
    },
    /// Apply an interpolated non-linear function (e.g. the RBF kernel
    /// `exp(-d)`; fold `gamma` into the data scaling beforehand).
    Interp(NonLinearFn),
}

/// A pairwise-distance workload.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceKernel {
    /// Instruction name tag (CM slot).
    pub name: &'static str,
    /// Features per row.
    pub features: usize,
    /// Rows of the reused set (references / centroids / support vectors).
    pub hot_rows: usize,
    /// Rows of the streamed set (queries / instances).
    pub cold_rows: usize,
    /// Result disposition.
    pub post: DistancePost,
}

/// DRAM placement of the kernel's operands (f32 element addresses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistancePlan {
    /// Hot rows, row-major `hot_rows x features`.
    pub hot_dram: u64,
    /// Cold rows, row-major `cold_rows x features`.
    pub cold_dram: u64,
    /// Results: `cold_rows x out_stride` (see [`DistanceKernel::out_stride`]).
    pub out_dram: u64,
}

/// The tiling the generator chose (exposed for tests and phase models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistanceTiling {
    /// Hot rows per block.
    pub hot_block: usize,
    /// Cold rows per block.
    pub cold_block: usize,
    /// Whether the whole hot set stays resident (loaded once).
    pub hot_resident: bool,
}

impl DistanceKernel {
    /// Result elements per cold row.
    #[must_use]
    pub fn out_stride(&self) -> usize {
        match self.post {
            DistancePost::Plain | DistancePost::Interp(_) => self.hot_rows,
            DistancePost::Sort { k } => 2 * k as usize,
        }
    }

    /// Computes the tiling for a configuration.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions,
    /// [`CodegenError::RowTooWide`] / [`CodegenError::OutputTooWide`] when
    /// no legal tiling exists, and [`CodegenError::Unsupported`] for a
    /// full-matrix output whose hot set cannot stay resident.
    pub fn tiling(&self, cfg: &ArchConfig) -> Result<DistanceTiling, CodegenError> {
        if self.features == 0 || self.hot_rows == 0 || self.cold_rows == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        if let DistancePost::Sort { k: 0 } = self.post {
            return Err(CodegenError::EmptyWorkload);
        }
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let out_cap = cfg.outputbuf_elems() as usize;
        if self.features > hot_half {
            return Err(CodegenError::RowTooWide { width: self.features, available: hot_half });
        }
        if self.features > cold_half {
            return Err(CodegenError::RowTooWide { width: self.features, available: cold_half });
        }
        let hot_resident = self.hot_rows * self.features <= hot_half;
        let hot_block = if hot_resident { self.hot_rows } else { hot_half / self.features };
        if matches!(self.post, DistancePost::Plain | DistancePost::Interp(_)) && !hot_resident {
            return Err(CodegenError::Unsupported(
                "full-matrix distance output needs the hot set resident; \
                 tile the hot set at a higher level or use Sort",
            ));
        }
        let stride = self.out_stride();
        if stride > out_cap {
            return Err(CodegenError::OutputTooWide { required: stride, available: out_cap });
        }
        let cold_block = (cold_half / self.features).min(out_cap / stride).min(self.cold_rows);
        if cold_block == 0 {
            return Err(CodegenError::RowTooWide { width: self.features, available: cold_half });
        }
        Ok(DistanceTiling { hot_block, cold_block, hot_resident })
    }

    /// Generates the full program.
    ///
    /// # Errors
    ///
    /// Propagates [`DistanceKernel::tiling`] failures.
    pub fn generate(&self, cfg: &ArchConfig, plan: &DistancePlan) -> Result<Program, CodegenError> {
        let t = self.tiling(cfg)?;
        let f = self.features as u32;
        let hot_half = cfg.hotbuf_elems() / 2;
        let cold_half = cfg.coldbuf_elems() / 2;
        let stride = self.out_stride() as u32;
        let fu = match self.post {
            DistancePost::Plain => FuOps::distance(None),
            DistancePost::Sort { k } => FuOps::distance(Some(k)),
            DistancePost::Interp(func) => {
                let mut ops = FuOps::distance(None);
                ops.misc = pudiannao_accel::isa::MiscOp::Interp(func);
                ops
            }
        };

        let n_hot_blocks = self.hot_rows.div_ceil(t.hot_block);
        let mut insts = Vec::new();
        let mut c0 = 0usize;
        let mut cold_parity = 0u32;
        while c0 < self.cold_rows {
            let cb = t.cold_block.min(self.cold_rows - c0);
            let cold_addr = cold_parity * cold_half;
            cold_parity ^= 1;
            for hbi in 0..n_hot_blocks {
                let h0 = hbi * t.hot_block;
                let hb = t.hot_block.min(self.hot_rows - h0);
                let first_of_block = hbi == 0;
                let last_of_block = hbi == n_hot_blocks - 1;

                let hot = if t.hot_resident {
                    if insts.is_empty() {
                        BufferRead::load(plan.hot_dram, 0, f, hb as u32)
                    } else {
                        BufferRead::read(0, f, hb as u32)
                    }
                } else {
                    BufferRead::load(
                        plan.hot_dram + (h0 * self.features) as u64,
                        (hbi as u32 % 2) * hot_half,
                        f,
                        hb as u32,
                    )
                };
                let cold = if first_of_block {
                    BufferRead::load(
                        plan.cold_dram + (c0 * self.features) as u64,
                        cold_addr,
                        f,
                        cb as u32,
                    )
                } else {
                    BufferRead::read(cold_addr, f, cb as u32)
                };
                let dest = plan.out_dram + (c0 * self.out_stride()) as u64;
                let out = match (first_of_block, last_of_block) {
                    (true, true) => OutputSlot::store(dest, stride, cb as u32),
                    (true, false) => OutputSlot::write(0, stride, cb as u32),
                    (false, true) => OutputSlot::accumulate_store(0, stride, cb as u32, dest),
                    (false, false) => OutputSlot::accumulate(0, stride, cb as u32),
                };
                insts.push(Instruction {
                    name: self.name.into(),
                    hot,
                    cold,
                    out,
                    fu,
                    hot_row_base: h0 as u64,
                });
            }
            c0 += cb;
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(dram: &mut Dram, addr: u64, n: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
        let mut rows = Vec::new();
        for i in 0..n {
            let row: Vec<f32> = (0..16).map(|_| rng.gen_range(0.0..1.0)).collect();
            dram.write_f32(addr + (i * 16) as u64, &row);
            rows.push(row);
        }
        rows
    }

    fn nearest(rows: &[Vec<f32>], q: &[f32]) -> usize {
        let mut best = (0, f32::INFINITY);
        for (i, r) in rows.iter().enumerate() {
            let d: f32 = r.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }

    #[test]
    fn kmeans_assignment_matches_software_nearest_centroid() {
        let cfg = ArchConfig::paper_default();
        let mut dram = Dram::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let centroids = fill(&mut dram, 0, 8, &mut rng);
        let instances = fill(&mut dram, 10_000, 300, &mut rng);
        let kernel = DistanceKernel {
            name: "k-means",
            features: 16,
            hot_rows: 8,
            cold_rows: 300,
            post: DistancePost::Sort { k: 1 },
        };
        let plan = DistancePlan { hot_dram: 0, cold_dram: 10_000, out_dram: 500_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        let mut accel = Accelerator::new(cfg).unwrap();
        accel.run(&program, &mut dram).unwrap();
        let sq_dist =
            |r: &[f32], q: &[f32]| -> f32 { r.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum() };
        for (i, inst) in instances.iter().enumerate() {
            let out = dram.read_f32(500_000 + (i * 2) as u64, 2);
            let chosen = out[1] as usize;
            let best = nearest(&centroids, inst);
            if chosen != best {
                // The fp16 datapath may flip the argmin when two centroids
                // are closer than fp16 resolution; accept those near-ties.
                let d_chosen = sq_dist(&centroids[chosen], inst);
                let d_best = sq_dist(&centroids[best], inst);
                assert!(
                    (d_chosen - d_best).abs() <= 2e-3 * d_best.max(1.0),
                    "instance {i}: chose centroid {chosen} (d={d_chosen}) over {best} (d={d_best})"
                );
            }
        }
    }

    #[test]
    fn knn_topk_matches_software_with_streamed_references() {
        // Reference set too large for the HotBuf half: forces the
        // multi-block accumulate path of Table 3.
        let cfg = ArchConfig::paper_default();
        let features = 64usize;
        let refs_n = 100usize; // 100 x 64 = 6400 elems > 2048-elem half
        let mut dram = Dram::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(2);
        let mut refs = Vec::new();
        for i in 0..refs_n {
            let row: Vec<f32> = (0..features).map(|_| rng.gen_range(0.0..1.0)).collect();
            dram.write_f32((i * features) as u64, &row);
            refs.push(row);
        }
        let queries_at = 200_000u64;
        let mut queries = Vec::new();
        for i in 0..20 {
            let row: Vec<f32> = (0..features).map(|_| rng.gen_range(0.0..1.0)).collect();
            dram.write_f32(queries_at + (i * features) as u64, &row);
            queries.push(row);
        }
        let k = 5u32;
        let kernel = DistanceKernel {
            name: "k-NN",
            features,
            hot_rows: refs_n,
            cold_rows: queries.len(),
            post: DistancePost::Sort { k },
        };
        let tiling = kernel.tiling(&cfg).unwrap();
        assert!(!tiling.hot_resident);
        let plan = DistancePlan { hot_dram: 0, cold_dram: queries_at, out_dram: 600_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        let mut accel = Accelerator::new(cfg).unwrap();
        accel.run(&program, &mut dram).unwrap();

        for (qi, q) in queries.iter().enumerate() {
            let out = dram.read_f32(600_000 + (qi * 2 * k as usize) as u64, 2 * k as usize);
            let got: Vec<usize> = out.chunks(2).map(|p| p[1] as usize).collect();
            // Software reference ranking on the same f16-quantised data
            // ordering (distances are close; compare index sets loosely by
            // checking each returned neighbour is within the true top-k by
            // a small rank margin).
            let mut dists: Vec<(f32, usize)> = refs
                .iter()
                .enumerate()
                .map(|(i, r)| (r.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>(), i))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let topk: Vec<usize> = dists.iter().take(k as usize + 2).map(|&(_, i)| i).collect();
            for g in &got {
                assert!(topk.contains(g), "query {qi}: {g} not among true nearest {topk:?}");
            }
        }
    }

    #[test]
    fn plain_matrix_requires_resident_hot_set() {
        let cfg = ArchConfig::paper_default();
        let kernel = DistanceKernel {
            name: "svm",
            features: 64,
            hot_rows: 100,
            cold_rows: 10,
            post: DistancePost::Plain,
        };
        assert_eq!(
            kernel.tiling(&cfg).unwrap_err(),
            CodegenError::Unsupported(
                "full-matrix distance output needs the hot set resident; \
                 tile the hot set at a higher level or use Sort",
            )
        );
    }

    #[test]
    fn rbf_kernel_matrix_matches_exp_of_distance() {
        let cfg = ArchConfig::paper_default();
        let mut dram = Dram::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(3);
        let rows = fill(&mut dram, 0, 6, &mut rng);
        let qs = fill(&mut dram, 5_000, 4, &mut rng);
        let kernel = DistanceKernel {
            name: "svm-k",
            features: 16,
            hot_rows: 6,
            cold_rows: 4,
            post: DistancePost::Interp(NonLinearFn::ExpNeg),
        };
        let plan = DistancePlan { hot_dram: 0, cold_dram: 5_000, out_dram: 20_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();
        for (c, q) in qs.iter().enumerate() {
            for (h, r) in rows.iter().enumerate() {
                let got = dram.read_f32(20_000 + (c * 6 + h) as u64, 1)[0];
                let d: f32 = r.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                let expect = (-d).exp();
                assert!((got - expect).abs() < 2e-2, "({c},{h}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn tiling_respects_output_capacity() {
        let cfg = ArchConfig::paper_default();
        let kernel = DistanceKernel {
            name: "knn",
            features: 4,
            hot_rows: 100_000,
            cold_rows: 1000,
            post: DistancePost::Sort { k: 256 }, // 512 f32 per cold row
        };
        let t = kernel.tiling(&cfg).unwrap();
        assert!(t.cold_block * 512 <= cfg.outputbuf_elems() as usize);
        // k too large for the OutputBuf at all:
        let bad = DistanceKernel { post: DistancePost::Sort { k: 2000 }, ..kernel };
        assert!(matches!(bad.tiling(&cfg), Err(CodegenError::OutputTooWide { .. })));
    }

    #[test]
    fn zero_dimensions_rejected() {
        let cfg = ArchConfig::paper_default();
        for kernel in [
            DistanceKernel {
                name: "x",
                features: 0,
                hot_rows: 1,
                cold_rows: 1,
                post: DistancePost::Plain,
            },
            DistanceKernel {
                name: "x",
                features: 4,
                hot_rows: 0,
                cold_rows: 1,
                post: DistancePost::Plain,
            },
            DistanceKernel {
                name: "x",
                features: 4,
                hot_rows: 1,
                cold_rows: 1,
                post: DistancePost::Sort { k: 0 },
            },
        ] {
            assert_eq!(kernel.tiling(&cfg).unwrap_err(), CodegenError::EmptyWorkload);
        }
    }

    #[test]
    fn program_shape_matches_block_math() {
        let cfg = ArchConfig::paper_default();
        let kernel = DistanceKernel {
            name: "knn",
            features: 64,
            hot_rows: 96, // 3 hot blocks of 32
            cold_rows: 50,
            post: DistancePost::Sort { k: 4 },
        };
        let t = kernel.tiling(&cfg).unwrap();
        assert_eq!(t.hot_block, 32);
        let plan = DistancePlan { hot_dram: 0, cold_dram: 100_000, out_dram: 200_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        let cold_blocks = 50usize.div_ceil(t.cold_block);
        assert_eq!(program.len(), cold_blocks * 3);
    }
}
