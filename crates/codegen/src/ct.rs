//! Classification-tree program generation (Section 2.7).
//!
//! Training reuses the Counter stage with greater-than comparisons (the
//! threshold-counting task). Prediction walks instances through the tree
//! level-synchronously with the ALU's tree-step: every instruction
//! advances all live instances one level, loading that level's node range
//! over the DMA — the irregular, reconfiguration-heavy access pattern
//! that gives CT prediction the smallest energy win in Figure 16.

use crate::error::CodegenError;
use pudiannao_accel::isa::{
    AluOp, BufferRead, CounterOp, FuOps, Instruction, OutputSlot, Program, ReadOp, WriteOp,
};
use pudiannao_accel::ArchConfig;

/// Threshold counting for one tree node's split search: counts, per
/// candidate threshold row, how many instances exceed each feature's
/// threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtCountKernel {
    /// Features per instance.
    pub features: usize,
    /// Candidate threshold rows (each row: one threshold per feature).
    pub thresholds: usize,
    /// Instances reaching this node.
    pub instances: usize,
}

/// DRAM placement for [`CtCountKernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtCountPlan {
    /// Instances, row-major.
    pub instances_dram: u64,
    /// Threshold rows, `thresholds x features`.
    pub thresholds_dram: u64,
    /// Counters out, `thresholds x features`.
    pub counters_dram: u64,
}

impl CtCountKernel {
    /// Generates the counting program.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] / [`CodegenError::RowTooWide`] /
    /// [`CodegenError::OutputTooWide`] per the buffer constraints.
    pub fn generate(&self, cfg: &ArchConfig, plan: &CtCountPlan) -> Result<Program, CodegenError> {
        if self.features == 0 || self.thresholds == 0 || self.instances == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let f = self.features;
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let out_cap = cfg.outputbuf_elems() as usize;
        if self.thresholds * f > hot_half {
            return Err(CodegenError::RowTooWide {
                width: self.thresholds * f,
                available: hot_half,
            });
        }
        if self.thresholds * f > out_cap {
            return Err(CodegenError::OutputTooWide {
                required: self.thresholds * f,
                available: out_cap,
            });
        }
        let block = (cold_half / f).max(1);
        let mut insts = Vec::new();
        let mut c0 = 0usize;
        let mut parity = 0u32;
        while c0 < self.instances {
            let cb = block.min(self.instances - c0);
            let first = c0 == 0;
            let last = c0 + cb == self.instances;
            let hot = if first {
                BufferRead::load(plan.thresholds_dram, 0, f as u32, self.thresholds as u32)
            } else {
                BufferRead::read(0, f as u32, self.thresholds as u32)
            };
            let cold = BufferRead::load(
                plan.instances_dram + (c0 * f) as u64,
                parity * (cold_half as u32),
                f as u32,
                cb as u32,
            );
            parity ^= 1;
            let out = match (first, last) {
                (true, true) => {
                    OutputSlot::store(plan.counters_dram, f as u32, self.thresholds as u32)
                }
                (true, false) => OutputSlot::write(0, f as u32, self.thresholds as u32),
                (false, true) => OutputSlot::accumulate_store(
                    0,
                    f as u32,
                    self.thresholds as u32,
                    plan.counters_dram,
                ),
                (false, false) => OutputSlot::accumulate(0, f as u32, self.thresholds as u32),
            };
            insts.push(Instruction {
                name: "ct-train".into(),
                hot,
                cold,
                out,
                fu: FuOps::count(CounterOp::CountGt),
                hot_row_base: 0,
            });
            c0 += cb;
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

/// A complete binary tree in heap order for the tree-walk kernel.
///
/// Node `i`'s children are `2i + 1` and `2i + 2`. Each node is 4 f32
/// words: `[feature, threshold, left, right]` for splits and
/// `[-1, class, 0, 0]` for leaves. A tree of `depth` levels has
/// `2^depth - 1` nodes, with leaves at the last level (shallower leaves
/// are allowed — deeper slots below them are padded).
#[derive(Clone, Debug, PartialEq)]
pub struct HeapTree {
    depth: u32,
    words: Vec<f32>,
}

impl HeapTree {
    /// Creates a tree of `depth` levels filled with class-0 leaves.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or above 24.
    #[must_use]
    pub fn new(depth: u32) -> HeapTree {
        assert!((1..=24).contains(&depth), "depth must be in 1..=24");
        let nodes = (1usize << depth) - 1;
        let mut words = Vec::with_capacity(nodes * 4);
        for _ in 0..nodes {
            words.extend_from_slice(&[-1.0, 0.0, 0.0, 0.0]);
        }
        HeapTree { depth, words }
    }

    /// Tree depth in levels.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.words.len() / 4
    }

    /// The raw node words for DRAM upload.
    #[must_use]
    pub fn words(&self) -> &[f32] {
        &self.words
    }

    /// Sets node `i` to a split on `feature <= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `i` has no children within the depth.
    pub fn set_split(&mut self, i: usize, feature: usize, threshold: f32) {
        assert!(2 * i + 2 < self.nodes(), "node {i} has no children at depth {}", self.depth);
        self.words[i * 4..i * 4 + 4].copy_from_slice(&[
            feature as f32,
            threshold,
            (2 * i + 1) as f32,
            (2 * i + 2) as f32,
        ]);
    }

    /// Sets node `i` to a leaf with the given class.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_leaf(&mut self, i: usize, class: usize) {
        assert!(i < self.nodes());
        self.words[i * 4..i * 4 + 4].copy_from_slice(&[-1.0, class as f32, 0.0, 0.0]);
    }

    /// Software reference walk (for oracles in tests).
    ///
    /// # Panics
    ///
    /// Panics if the walk leaves the node array (malformed tree).
    #[must_use]
    pub fn classify(&self, x: &[f32]) -> usize {
        let mut i = 0usize;
        loop {
            let n = &self.words[i * 4..i * 4 + 4];
            if n[0] < 0.0 {
                return n[1] as usize;
            }
            i = if x[n[0] as usize] <= n[1] { n[2] as usize } else { n[3] as usize };
        }
    }

    /// First node index of a level.
    #[must_use]
    pub fn level_start(level: u32) -> usize {
        (1usize << level) - 1
    }

    /// Node count of a level.
    #[must_use]
    pub fn level_len(level: u32) -> usize {
        1usize << level
    }
}

/// Level-synchronous tree-walk prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeWalkKernel {
    /// Tree depth in levels.
    pub depth: u32,
    /// Features per instance.
    pub features: usize,
    /// Instances to classify.
    pub instances: usize,
}

/// DRAM placement for [`TreeWalkKernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeWalkPlan {
    /// Heap-ordered tree node words ([`HeapTree::words`]).
    pub tree_dram: u64,
    /// Instances, row-major.
    pub instances_dram: u64,
    /// Per-instance walker state; the caller zeroes it (all walkers at
    /// the root), and after the program it holds `-(1 + class)`.
    pub states_dram: u64,
}

impl TreeWalkKernel {
    /// Generates the walk: instance blocks outer, levels inner. Every
    /// level instruction LOADs that level's node range (the tree-reload
    /// traffic the subtree strategy of Section 2.7 targets) and round-
    /// trips the walker states through DRAM.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] / [`CodegenError::RowTooWide`] per
    /// the buffer constraints.
    pub fn generate(&self, cfg: &ArchConfig, plan: &TreeWalkPlan) -> Result<Program, CodegenError> {
        if self.depth == 0 || self.features == 0 || self.instances == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let f = self.features;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        if f > cold_half {
            return Err(CodegenError::RowTooWide { width: f, available: cold_half });
        }
        let block = (cold_half / f).min(cfg.outputbuf_elems() as usize).max(1);
        let mut insts = Vec::new();
        let mut c0 = 0usize;
        let mut parity = 0u32;
        while c0 < self.instances {
            let cb = block.min(self.instances - c0);
            let cold_addr = parity * (cold_half as u32);
            parity ^= 1;
            for level in 0..self.depth {
                let start = HeapTree::level_start(level);
                let len = HeapTree::level_len(level);
                let states = plan.states_dram + c0 as u64;
                insts.push(Instruction {
                    name: "ct-predict".into(),
                    hot: BufferRead::load(plan.tree_dram + (start * 4) as u64, 0, 4, len as u32),
                    cold: if level == 0 {
                        BufferRead::load(
                            plan.instances_dram + (c0 * f) as u64,
                            cold_addr,
                            f as u32,
                            cb as u32,
                        )
                    } else {
                        BufferRead::read(cold_addr, f as u32, cb as u32)
                    },
                    out: OutputSlot {
                        read_op: ReadOp::Load,
                        read_dram_addr: states,
                        addr: 0,
                        stride: 1,
                        iter: cb as u32,
                        write_op: WriteOp::Store,
                        write_dram_addr: states,
                    },
                    fu: FuOps::alu_only(AluOp::TreeStep),
                    hot_row_base: start as u64,
                });
            }
            c0 += cb;
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }

    /// Decodes a final walker state into a class label.
    #[must_use]
    pub fn decode_state(state: f32) -> Option<usize> {
        if state < 0.0 {
            Some((-state - 1.0) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn threshold_counting_matches_software() {
        let cfg = ArchConfig::paper_default();
        let (features, thresholds, n) = (6usize, 3usize, 40usize);
        let mut rng = StdRng::seed_from_u64(7);
        let mut dram = Dram::new(1 << 16);
        let mut data = Vec::new();
        for i in 0..n {
            let row: Vec<f32> = (0..features).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            // Quantise to f16 up front so == comparisons below are exact.
            let row: Vec<f32> =
                row.iter().map(|&v| pudiannao_softfp::F16::from_f32(v).to_f32()).collect();
            dram.write_f32((i * features) as u64, &row);
            data.push(row);
        }
        let mut thr = Vec::new();
        for t in 0..thresholds {
            let row: Vec<f32> = (0..features)
                .map(|_| pudiannao_softfp::F16::from_f32((t as f32 + 1.0) * 0.25).to_f32())
                .collect();
            dram.write_f32(10_000 + (t * features) as u64, &row);
            thr.push(row);
        }
        let kernel = CtCountKernel { features, thresholds, instances: n };
        let plan =
            CtCountPlan { instances_dram: 0, thresholds_dram: 10_000, counters_dram: 20_000 };
        Accelerator::new(cfg.clone())
            .unwrap()
            .run(&kernel.generate(&cfg, &plan).unwrap(), &mut dram)
            .unwrap();
        let counters = dram.read_f32(20_000, thresholds * features);
        for t in 0..thresholds {
            for f in 0..features {
                let expect = data.iter().filter(|r| r[f] > thr[t][f]).count() as f32;
                assert_eq!(counters[t * features + f], expect, "t={t} f={f}");
            }
        }
    }

    #[test]
    fn tree_walk_matches_software_classifier() {
        let cfg = ArchConfig::paper_default();
        let mut tree = HeapTree::new(4);
        let mut rng = StdRng::seed_from_u64(8);
        // Random splits in the first 3 levels, random leaves at level 3.
        for i in 0..HeapTree::level_start(3) {
            tree.set_split(i, rng.gen_range(0..6), rng.gen_range(0.25..0.75));
        }
        for i in HeapTree::level_start(3)..tree.nodes() {
            tree.set_leaf(i, rng.gen_range(0..4));
        }
        let n = 64usize;
        let mut dram = Dram::new(1 << 20);
        dram.write_f32(0, tree.words());
        let mut data = Vec::new();
        for i in 0..n {
            let row: Vec<f32> = (0..6).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            let row: Vec<f32> =
                row.iter().map(|&v| pudiannao_softfp::F16::from_f32(v).to_f32()).collect();
            dram.write_f32(50_000 + (i * 6) as u64, &row);
            data.push(row);
        }
        dram.write_f32(100_000, &vec![0.0f32; n]); // walkers at the root
        let kernel = TreeWalkKernel { depth: 4, features: 6, instances: n };
        let plan = TreeWalkPlan { tree_dram: 0, instances_dram: 50_000, states_dram: 100_000 };
        Accelerator::new(cfg.clone())
            .unwrap()
            .run(&kernel.generate(&cfg, &plan).unwrap(), &mut dram)
            .unwrap();
        let states = dram.read_f32(100_000, n);
        for (i, row) in data.iter().enumerate() {
            let got = TreeWalkKernel::decode_state(states[i]);
            assert_eq!(got, Some(tree.classify(row)), "instance {i}");
        }
    }

    #[test]
    fn shallow_leaves_finish_early() {
        let cfg = ArchConfig::paper_default();
        let mut tree = HeapTree::new(3);
        tree.set_split(0, 0, 0.5);
        tree.set_leaf(1, 5); // left child is a leaf at level 1
        tree.set_split(2, 1, 0.5);
        tree.set_leaf(5, 6);
        tree.set_leaf(6, 7);
        let mut dram = Dram::new(1 << 16);
        dram.write_f32(0, tree.words());
        dram.write_f32(1000, &[0.2, 0.9]); // goes left -> leaf 5 at level 1
        dram.write_f32(1002, &[0.9, 0.9]); // right then right -> class 7
        dram.write_f32(2000, &[0.0, 0.0]);
        let kernel = TreeWalkKernel { depth: 3, features: 2, instances: 2 };
        let plan = TreeWalkPlan { tree_dram: 0, instances_dram: 1000, states_dram: 2000 };
        Accelerator::new(cfg.clone())
            .unwrap()
            .run(&kernel.generate(&cfg, &plan).unwrap(), &mut dram)
            .unwrap();
        let states = dram.read_f32(2000, 2);
        assert_eq!(TreeWalkKernel::decode_state(states[0]), Some(5));
        assert_eq!(TreeWalkKernel::decode_state(states[1]), Some(7));
    }

    #[test]
    fn heap_tree_helpers() {
        let tree = HeapTree::new(3);
        assert_eq!(tree.nodes(), 7);
        assert_eq!(tree.depth(), 3);
        assert_eq!(HeapTree::level_start(0), 0);
        assert_eq!(HeapTree::level_start(2), 3);
        assert_eq!(HeapTree::level_len(2), 4);
        assert_eq!(TreeWalkKernel::decode_state(-3.0), Some(2));
        assert_eq!(TreeWalkKernel::decode_state(4.0), None);
    }

    #[test]
    fn validation() {
        let cfg = ArchConfig::paper_default();
        assert!(CtCountKernel { features: 0, thresholds: 1, instances: 1 }
            .generate(
                &cfg,
                &CtCountPlan { instances_dram: 0, thresholds_dram: 0, counters_dram: 0 }
            )
            .is_err());
        assert!(TreeWalkKernel { depth: 0, features: 2, instances: 2 }
            .generate(&cfg, &TreeWalkPlan { tree_dram: 0, instances_dram: 0, states_dram: 0 })
            .is_err());
    }
}
