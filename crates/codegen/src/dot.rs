//! Tiled dot-product generation: LR prediction/training sweeps and DNN
//! layer passes.
//!
//! Two mappings, matching Section 2's locality analysis:
//!
//! - [`BroadcastDot`] — one shared vector (LR's `theta`, or one instance's
//!   activations) stays hot while rows stream cold; partial sums spill to
//!   DRAM between width tiles, exactly the Figure-7 tiling.
//! - [`BatchedMatmul`] — a *batch* of instances stays hot while weight
//!   rows stream cold exactly once (the DNN mapping where "neurons of the
//!   g-th layer will be used Nb times ... while each synapse is only used
//!   once").

use crate::error::CodegenError;
use pudiannao_accel::isa::{BufferRead, FuOps, Instruction, OutputSlot, Program, ReadOp, WriteOp};
use pudiannao_accel::ArchConfig;
use pudiannao_softfp::NonLinearFn;

/// `out[r] = f(sum_j hot[j] * cold[r][j])` over all cold rows.
#[derive(Clone, Debug, PartialEq)]
pub struct BroadcastDot {
    /// Instruction name tag.
    pub name: &'static str,
    /// Vector length `d`.
    pub width: usize,
    /// Number of cold rows (instances).
    pub cold_rows: usize,
    /// Optional Misc-stage non-linearity on the final accumulation.
    pub activation: Option<NonLinearFn>,
}

/// DRAM placement for [`BroadcastDot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// The shared vector, `width` f32 elements.
    pub hot_dram: u64,
    /// Cold rows, row-major `cold_rows x width`.
    pub cold_dram: u64,
    /// Results, `cold_rows` f32 elements (also holds partial sums
    /// between width tiles).
    pub out_dram: u64,
}

impl BroadcastDot {
    /// Chosen `(tile_width, cold_block)` for a configuration.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions.
    pub fn tiling(&self, cfg: &ArchConfig) -> Result<(usize, usize), CodegenError> {
        if self.width == 0 || self.cold_rows == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let tile = self.width.min(hot_half);
        let cold_block =
            (cold_half / tile).min(cfg.outputbuf_elems() as usize).min(self.cold_rows).max(1);
        if cold_half < tile {
            return Err(CodegenError::RowTooWide { width: tile, available: cold_half });
        }
        Ok((tile, cold_block))
    }

    /// Generates the program: width tiles outer, cold blocks inner, with
    /// partial sums spilled to `out_dram` between tiles.
    ///
    /// # Errors
    ///
    /// Propagates [`BroadcastDot::tiling`] failures.
    pub fn generate(
        &self,
        cfg: &ArchConfig,
        plan: &BroadcastPlan,
    ) -> Result<Program, CodegenError> {
        let (tile, cold_block) = self.tiling(cfg)?;
        let hot_half = cfg.hotbuf_elems() / 2;
        let cold_half = cfg.coldbuf_elems() / 2;
        let n_tiles = self.width.div_ceil(tile);
        let mut insts = Vec::new();
        let mut cold_parity = 0u32;
        for ti in 0..n_tiles {
            let j0 = ti * tile;
            let tw = tile.min(self.width - j0);
            let last_tile = ti == n_tiles - 1;
            let mut c0 = 0usize;
            let mut first_in_tile = true;
            while c0 < self.cold_rows {
                let cb = cold_block.min(self.cold_rows - c0);
                let hot = if first_in_tile {
                    BufferRead::load(
                        plan.hot_dram + j0 as u64,
                        (ti as u32 % 2) * hot_half,
                        tw as u32,
                        1,
                    )
                } else {
                    BufferRead::read((ti as u32 % 2) * hot_half, tw as u32, 1)
                };
                first_in_tile = false;
                let cold = BufferRead::load_2d(
                    plan.cold_dram + (c0 * self.width + j0) as u64,
                    self.width as u64,
                    cold_parity * cold_half,
                    tw as u32,
                    cb as u32,
                );
                cold_parity ^= 1;
                let dest = plan.out_dram + c0 as u64;
                let out = OutputSlot {
                    read_op: if ti == 0 { ReadOp::Null } else { ReadOp::Load },
                    read_dram_addr: dest,
                    addr: 0,
                    stride: 1,
                    iter: cb as u32,
                    write_op: WriteOp::Store,
                    write_dram_addr: dest,
                };
                let fu = FuOps::dot_broadcast(if last_tile { self.activation } else { None });
                insts.push(Instruction {
                    name: self.name.into(),
                    hot,
                    cold,
                    out,
                    fu,
                    hot_row_base: 0,
                });
                c0 += cb;
            }
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

/// Batched layer pass: `out[c][h] = f(sum_j hot[h][j] * cold[c][j])`,
/// where hot rows are an instance batch and cold rows are weight rows
/// (streamed exactly once per batch).
#[derive(Clone, Debug, PartialEq)]
pub struct BatchedMatmul {
    /// Instruction name tag.
    pub name: &'static str,
    /// Shared vector length per row (`Na`, the input-neuron count).
    pub width: usize,
    /// Hot rows (instance batch size, must fit the HotBuf half).
    pub batch: usize,
    /// Cold rows (output neurons `Nb`).
    pub cold_rows: usize,
    /// Non-linearity applied after the final width tile.
    pub activation: Option<NonLinearFn>,
}

/// DRAM placement for [`BatchedMatmul`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatmulPlan {
    /// Instance batch, row-major `batch x width`.
    pub hot_dram: u64,
    /// Weight rows, row-major `cold_rows x width`.
    pub cold_dram: u64,
    /// Results, row-major `cold_rows x batch` (also partial-sum spill).
    pub out_dram: u64,
}

impl BatchedMatmul {
    /// Chosen `(tile_width, cold_block)`.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions;
    /// [`CodegenError::RowTooWide`] if the batch cannot fit one tile
    /// column in the HotBuf half; [`CodegenError::OutputTooWide`] if one
    /// output row of `batch` values exceeds the OutputBuf.
    pub fn tiling(&self, cfg: &ArchConfig) -> Result<(usize, usize), CodegenError> {
        if self.width == 0 || self.batch == 0 || self.cold_rows == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let out_cap = cfg.outputbuf_elems() as usize;
        let tile = (hot_half / self.batch).min(self.width);
        if tile == 0 {
            return Err(CodegenError::RowTooWide { width: self.batch, available: hot_half });
        }
        if self.batch > out_cap {
            return Err(CodegenError::OutputTooWide { required: self.batch, available: out_cap });
        }
        let cold_block = (cold_half / tile).min(out_cap / self.batch).min(self.cold_rows).max(1);
        Ok((tile, cold_block))
    }

    /// Generates the program: width tiles outer, weight blocks inner,
    /// partial output rows spilled to DRAM between tiles.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchedMatmul::tiling`] failures.
    pub fn generate(&self, cfg: &ArchConfig, plan: &MatmulPlan) -> Result<Program, CodegenError> {
        let (tile, cold_block) = self.tiling(cfg)?;
        let hot_half = cfg.hotbuf_elems() / 2;
        let cold_half = cfg.coldbuf_elems() / 2;
        let n_tiles = self.width.div_ceil(tile);
        let mut insts = Vec::new();
        let mut cold_parity = 0u32;
        for ti in 0..n_tiles {
            let j0 = ti * tile;
            let tw = tile.min(self.width - j0);
            let last_tile = ti == n_tiles - 1;
            let mut first_in_tile = true;
            let mut c0 = 0usize;
            while c0 < self.cold_rows {
                let cb = cold_block.min(self.cold_rows - c0);
                let hot = if first_in_tile {
                    BufferRead::load_2d(
                        plan.hot_dram + j0 as u64,
                        self.width as u64,
                        (ti as u32 % 2) * hot_half,
                        tw as u32,
                        self.batch as u32,
                    )
                } else {
                    BufferRead::read((ti as u32 % 2) * hot_half, tw as u32, self.batch as u32)
                };
                first_in_tile = false;
                let cold = BufferRead::load_2d(
                    plan.cold_dram + (c0 * self.width + j0) as u64,
                    self.width as u64,
                    cold_parity * cold_half,
                    tw as u32,
                    cb as u32,
                );
                cold_parity ^= 1;
                let dest = plan.out_dram + (c0 * self.batch) as u64;
                let out = OutputSlot {
                    read_op: if ti == 0 { ReadOp::Null } else { ReadOp::Load },
                    read_dram_addr: dest,
                    addr: 0,
                    stride: self.batch as u32,
                    iter: cb as u32,
                    write_op: WriteOp::Store,
                    write_dram_addr: dest,
                };
                let fu = FuOps::dot_broadcast(if last_tile { self.activation } else { None });
                insts.push(Instruction {
                    name: self.name.into(),
                    hot,
                    cold,
                    out,
                    fu,
                    hot_row_base: 0,
                });
                c0 += cb;
            }
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn broadcast_dot_matches_software_over_tiles() {
        // width 3000 forces two width tiles (hot half = 2048 elems).
        let cfg = ArchConfig::paper_default();
        let width = 3000usize;
        let rows = 10usize;
        let mut rng = StdRng::seed_from_u64(4);
        let mut dram = Dram::new(1 << 20);
        let theta: Vec<f32> = (0..width).map(|_| rng.gen_range(-0.1..0.1)).collect();
        dram.write_f32(0, &theta);
        let mut data = Vec::new();
        for r in 0..rows {
            let row: Vec<f32> = (0..width).map(|_| rng.gen_range(-1.0..1.0)).collect();
            dram.write_f32(10_000 + (r * width) as u64, &row);
            data.push(row);
        }
        let kernel = BroadcastDot { name: "lr", width, cold_rows: rows, activation: None };
        let plan = BroadcastPlan { hot_dram: 0, cold_dram: 10_000, out_dram: 900_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        assert!(program.len() >= 2, "expected multiple tiles");
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();
        for (r, row) in data.iter().enumerate() {
            let got = dram.read_f32(900_000 + r as u64, 1)[0];
            let exact: f32 = theta.iter().zip(row).map(|(a, b)| a * b).sum();
            assert!((got - exact).abs() < 0.3, "row {r}: {got} vs {exact}");
        }
    }

    #[test]
    fn broadcast_dot_with_sigmoid_activation() {
        let cfg = ArchConfig::paper_default();
        let width = 32usize;
        let mut dram = Dram::new(1 << 16);
        let theta = vec![0.05f32; width];
        dram.write_f32(0, &theta);
        let row = vec![0.5f32; width];
        dram.write_f32(1000, &row);
        let kernel = BroadcastDot {
            name: "dnn",
            width,
            cold_rows: 1,
            activation: Some(NonLinearFn::Sigmoid),
        };
        let plan = BroadcastPlan { hot_dram: 0, cold_dram: 1000, out_dram: 2000 };
        Accelerator::new(cfg.clone())
            .unwrap()
            .run(&kernel.generate(&cfg, &plan).unwrap(), &mut dram)
            .unwrap();
        let got = dram.read_f32(2000, 1)[0];
        let z = 0.05f32 * 0.5 * width as f32;
        let expect = 1.0 / (1.0 + (-z).exp());
        assert!((got - expect).abs() < 5e-3, "{got} vs {expect}");
    }

    #[test]
    fn batched_matmul_matches_software_layer() {
        let cfg = ArchConfig::paper_default();
        let (width, batch, neurons) = (100usize, 8usize, 24usize);
        let mut rng = StdRng::seed_from_u64(5);
        let mut dram = Dram::new(1 << 20);
        let mut xs = Vec::new();
        for b in 0..batch {
            let row: Vec<f32> = (0..width).map(|_| rng.gen_range(0.0..1.0)).collect();
            dram.write_f32((b * width) as u64, &row);
            xs.push(row);
        }
        let mut ws = Vec::new();
        for n in 0..neurons {
            let row: Vec<f32> = (0..width).map(|_| rng.gen_range(-0.1..0.1)).collect();
            dram.write_f32(100_000 + (n * width) as u64, &row);
            ws.push(row);
        }
        let kernel = BatchedMatmul {
            name: "dnn",
            width,
            batch,
            cold_rows: neurons,
            activation: Some(NonLinearFn::Sigmoid),
        };
        let plan = MatmulPlan { hot_dram: 0, cold_dram: 100_000, out_dram: 800_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();
        for (n, w) in ws.iter().enumerate() {
            for (b, x) in xs.iter().enumerate() {
                let got = dram.read_f32(800_000 + (n * batch + b) as u64, 1)[0];
                let z: f32 = w.iter().zip(x).map(|(a, x)| a * x).sum();
                let expect = 1.0 / (1.0 + (-z).exp());
                assert!((got - expect).abs() < 1e-2, "({n},{b}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn batched_matmul_streams_weights_once() {
        let cfg = ArchConfig::paper_default();
        let kernel =
            BatchedMatmul { name: "dnn", width: 1024, batch: 4, cold_rows: 512, activation: None };
        let plan = MatmulPlan { hot_dram: 0, cold_dram: 1 << 20, out_dram: 1 << 22 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        // Sum cold LOAD elements across the program: must equal the weight
        // matrix exactly once.
        let weight_elems: u64 = program.instructions().iter().map(|i| i.cold.elems()).sum();
        assert_eq!(weight_elems, 1024 * 512);
    }

    #[test]
    fn tiling_validation() {
        let cfg = ArchConfig::paper_default();
        assert!(matches!(
            BroadcastDot { name: "x", width: 0, cold_rows: 1, activation: None }.tiling(&cfg),
            Err(CodegenError::EmptyWorkload)
        ));
        assert!(matches!(
            BatchedMatmul { name: "x", width: 8, batch: 5000, cold_rows: 4, activation: None }
                .tiling(&cfg),
            Err(CodegenError::RowTooWide { .. })
        ));
        assert!(matches!(
            BatchedMatmul { name: "x", width: 8, batch: 2049, cold_rows: 4, activation: None }
                .tiling(&cfg),
            Err(CodegenError::RowTooWide { .. }) | Err(CodegenError::OutputTooWide { .. })
        ));
    }
}
