//! Table-3-style program listings.
//!
//! Renders a [`Program`] in the paper's five-slot column format so a
//! generated k-Means program can be compared, row by row, with Table 3.

use pudiannao_accel::isa::{
    AccOp, AdderOp, AluOp, CounterOp, Instruction, MiscOp, MultOp, Program, ReadOp, TreeOp, WriteOp,
};

fn read_op(op: ReadOp) -> &'static str {
    match op {
        ReadOp::Null => "NULL",
        ReadOp::Load => "LOAD",
        ReadOp::Read => "READ",
    }
}

fn write_op(op: WriteOp) -> &'static str {
    match op {
        WriteOp::Null => "NULL",
        WriteOp::Write => "WRITE",
        WriteOp::Store => "STORE",
    }
}

fn fu_column(inst: &Instruction) -> String {
    let counter = match inst.fu.counter {
        CounterOp::Null => "NULL",
        CounterOp::CountEq => "CNT-EQ",
        CounterOp::CountGt => "CNT-GT",
    };
    let adder = match inst.fu.adder {
        AdderOp::Null => "NULL",
        AdderOp::Add => "ADD",
        AdderOp::Sub => "SUB",
    };
    let mult = match inst.fu.mult {
        MultOp::Null => "NULL",
        MultOp::Mult => "MULT",
    };
    let tree = match inst.fu.tree {
        TreeOp::Null => "NULL",
        TreeOp::Add => "ADD",
    };
    let acc = match inst.fu.acc {
        AccOp::Null => "NULL",
        AccOp::Acc => "ACC",
        AccOp::Mul => "MUL",
    };
    let misc = match inst.fu.misc {
        MiscOp::Null => "NULL".to_string(),
        MiscOp::Sort { k } => format!("SORT{k}"),
        MiscOp::Interp(f) => format!("{f}").to_uppercase(),
    };
    let alu = match inst.fu.alu {
        AluOp::Null => "NULL".to_string(),
        AluOp::Div => "DIV".to_string(),
        AluOp::MulRows => "MULR".to_string(),
        AluOp::Log { terms } => format!("LOG{terms}"),
        AluOp::TreeStep => "TSTEP".to_string(),
    };
    format!("{counter} {adder} {mult} {tree} {acc} {misc} {alu}")
}

/// Renders one instruction as a Table-3 row.
#[must_use]
pub fn line(inst: &Instruction) -> String {
    format!(
        "{:<12}| {:<4} {:>8} {:>5} {:>5} | {:<4} {:>8} {:>5} {:>5} | {:<4} {:<5} {:>8} {:>8} {:>4} {:>4} | {}",
        inst.name,
        read_op(inst.hot.op),
        inst.hot.dram_addr,
        inst.hot.stride,
        inst.hot.iter,
        read_op(inst.cold.op),
        inst.cold.dram_addr,
        inst.cold.stride,
        inst.cold.iter,
        read_op(inst.out.read_op),
        write_op(inst.out.write_op),
        inst.out.read_dram_addr,
        inst.out.write_dram_addr,
        inst.out.stride,
        inst.out.iter,
        fu_column(inst),
    )
}

/// Renders a whole program with the Table-2 header; long programs are
/// elided in the middle (`head`/`tail` rows kept).
#[must_use]
pub fn listing(program: &Program, head: usize, tail: usize) -> String {
    let mut out = String::new();
    out.push_str(
        "CM          | HotBuf: OP DRAMADDR STRD ITER | ColdBuf: OP DRAMADDR STRD ITER | \
         OutputBuf: RD WR RADDR WADDR STRD ITER | FU: CNT ADD MULT TREE ACC MISC ALU\n",
    );
    let n = program.len();
    for (i, inst) in program.instructions().iter().enumerate() {
        if i >= head && i < n.saturating_sub(tail) {
            if i == head {
                out.push_str(&format!("... ({} rows elided) ...\n", n - head - tail));
            }
            continue;
        }
        out.push_str(&line(inst));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{DistanceKernel, DistancePlan, DistancePost};
    use pudiannao_accel::ArchConfig;

    fn sample_program() -> Program {
        let kernel = DistanceKernel {
            name: "k-means",
            features: 16,
            hot_rows: 128,
            cold_rows: 1024,
            post: DistancePost::Sort { k: 1 },
        };
        kernel
            .generate(
                &ArchConfig::paper_default(),
                &DistancePlan { hot_dram: 0, cold_dram: 16384, out_dram: 1_064_960 },
            )
            .unwrap()
    }

    #[test]
    fn listing_has_table3_vocabulary() {
        let listing = listing(&sample_program(), 2, 1);
        assert!(listing.contains("k-means"));
        assert!(listing.contains("LOAD"));
        assert!(listing.contains("READ"));
        assert!(listing.contains("STORE"));
        assert!(listing.contains("SUB MULT ADD ACC SORT1"));
        assert!(listing.contains("elided"));
    }

    #[test]
    fn first_instruction_loads_then_reuses_centroids() {
        let program = sample_program();
        let rows: Vec<String> = program.instructions().iter().map(line).collect();
        assert!(rows[0].starts_with("k-means"));
        assert!(rows[0].contains("LOAD"));
        // Second instruction re-READs the resident centroids (Table 3's
        // second row).
        assert!(rows[1].trim_start().split('|').nth(1).unwrap().contains("READ"));
    }

    #[test]
    fn short_program_is_not_elided() {
        let p = Program::new(vec![sample_program().instructions()[0].clone()]).unwrap();
        let s = listing(&p, 10, 10);
        assert!(!s.contains("elided"));
    }
}
