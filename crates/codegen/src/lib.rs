//! The PuDianNao code generator (Section 4).
//!
//! "In order to facilitate programmers, we implement a code generator to
//! generate instructions for different ML techniques." This crate is that
//! generator: given a workload shape and the architecture configuration,
//! each module emits a [`Program`] with the Table-3 tiling and ping-pong
//! double-buffering pattern, plus a disassembler that renders Table-3
//! style listings.
//!
//! | module | phases covered |
//! |---|---|
//! | [`distance`] | k-NN prediction, k-Means assignment, SVM kernel matrix / prediction kernels |
//! | [`dot`] | LR training & prediction, DNN feedforward / BP / RBM passes |
//! | [`nb`] | NB training (counting) and prediction (probability products) |
//! | [`ct`] | CT training (threshold counting) and prediction (level-synchronous tree walk) |
//! | [`pipelines`] | whole-technique chains: multi-layer MLP feedforward, SVM prediction, the k-Means update step |
//! | [`phases`] | the 13-phase registry with analytic full-scale cost models |
//! | [`disasm`] | Table-3 rendering |
//!
//! [`Program`]: pudiannao_accel::Program

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// ^ `!(x > 0.0)` is used deliberately in validation: unlike `x <= 0.0`
// it also rejects NaN, which is exactly what config checks want.

pub mod ct;
pub mod disasm;
pub mod distance;
pub mod dot;
mod error;
pub mod nb;
pub mod phases;
pub mod pipelines;

pub use error::CodegenError;
