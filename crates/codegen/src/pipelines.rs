//! Multi-stage pipelines: whole-technique programs composed from the
//! kernel generators.
//!
//! The single-kernel generators in [`distance`](crate::distance) /
//! [`dot`](crate::dot) / [`nb`](crate::nb) / [`ct`](crate::ct) cover the
//! time-dominant step of each phase; this module chains them into
//! complete technique executions:
//!
//! - [`MlpForward`] — a full multi-layer feedforward pass, layer by
//!   layer, with biases folded in via the paper's augmented-input
//!   convention (`w[0,i] = s[i]`, `x_0 = 1`, Section 2.3).
//! - [`SvmPredict`] — kernel-value computation against the support
//!   vectors followed by the alpha-weighted reduction.
//! - [`kmeans_update_program`] — the centroid-normalisation step (ALU
//!   division) that completes a Lloyd iteration after the assignment
//!   sweep.
//! - [`LrGdStep`] — one complete gradient-descent step of linear
//!   regression (errors, gradient, parameter update) built on the
//!   weighted-sum dataflow.
//! - [`MlpBackprop`] — a full back-propagation SGD step (signal, sigmoid
//!   derivative, rank-1 weight updates), completing the DNN
//!   "global training" mode on the accelerator.

use crate::distance::{DistanceKernel, DistancePlan, DistancePost};
use crate::dot::{BroadcastDot, BroadcastPlan};
use crate::error::CodegenError;
use pudiannao_accel::isa::{
    AluOp, BufferRead, FuOps, Instruction, OutputSlot, Program, ReadOp, WriteOp,
};
use pudiannao_accel::ArchConfig;
use pudiannao_softfp::NonLinearFn;

/// A full feedforward pass through an MLP for a batch of instances.
///
/// Activations for instance `b`, layer `l` live at
/// `plan.activations[l] + b * (width_l + 1)`, **augmented**: element 0 is
/// the constant 1.0 (the caller pre-fills it once), elements `1..` are
/// the neuron values. Weight rows for layer `l` are `(width_l + 1)`-wide:
/// `[bias, w_1, ..., w_Na]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpForward {
    /// Layer widths including the input layer: `[in, h1, ..., out]`.
    pub widths: Vec<usize>,
    /// Instances per pass.
    pub batch: usize,
    /// Activation function applied at every layer.
    pub activation: NonLinearFn,
}

/// DRAM placement for [`MlpForward`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlpForwardPlan {
    /// Per connection layer: augmented weight rows, row-major
    /// `widths[l+1] x (widths[l] + 1)`.
    pub weights: Vec<u64>,
    /// Per layer (including input, length `widths.len()`): augmented
    /// activation rows, `batch x (widths[l] + 1)`, element 0 pre-set to 1.
    pub activations: Vec<u64>,
}

impl MlpForward {
    /// Generates the layer-chained program: for every instance and layer,
    /// one broadcast-dot group computing the next activation row (through
    /// the interpolated activation function) directly into the next
    /// layer's augmented slot.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for fewer than two layers or a zero
    /// batch; [`CodegenError::Unsupported`] if the plan's lengths do not
    /// match the widths; tiling errors from the dot generator otherwise.
    pub fn generate(
        &self,
        cfg: &ArchConfig,
        plan: &MlpForwardPlan,
    ) -> Result<Program, CodegenError> {
        if self.widths.len() < 2 || self.batch == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        if plan.weights.len() != self.widths.len() - 1
            || plan.activations.len() != self.widths.len()
        {
            return Err(CodegenError::Unsupported(
                "plan must carry one weight base per connection layer and \
                 one activation base per layer",
            ));
        }
        let mut program: Option<Program> = None;
        for l in 0..self.widths.len() - 1 {
            let in_aug = self.widths[l] + 1;
            let out_aug = self.widths[l + 1] + 1;
            for b in 0..self.batch {
                let dot = BroadcastDot {
                    name: "dnn-ff",
                    width: in_aug,
                    cold_rows: self.widths[l + 1],
                    activation: Some(self.activation),
                };
                let dot_plan = BroadcastPlan {
                    // The instance's augmented activation row is the shared
                    // vector; weight rows stream cold.
                    hot_dram: plan.activations[l] + (b * in_aug) as u64,
                    cold_dram: plan.weights[l],
                    // Results land after the constant-1 slot of the next
                    // layer's row.
                    out_dram: plan.activations[l + 1] + (b * out_aug) as u64 + 1,
                };
                let p = dot.generate(cfg, &dot_plan)?;
                match &mut program {
                    Some(acc) => acc.extend(p),
                    None => program = Some(p),
                }
            }
        }
        program.ok_or(CodegenError::EmptyWorkload)
    }

    /// Augmented row width of layer `l`.
    #[must_use]
    pub fn aug_width(&self, l: usize) -> usize {
        self.widths[l] + 1
    }
}

/// SVM prediction: kernel values against the support vectors, then the
/// alpha-weighted sum. The decision value still needs the host to add the
/// scalar bias `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvmPredict {
    /// Features per instance.
    pub features: usize,
    /// Support vectors (must fit the HotBuf half for the pairwise kernel
    /// stage; tile at a higher level otherwise).
    pub support_vectors: usize,
    /// Query instances.
    pub queries: usize,
}

/// DRAM placement for [`SvmPredict`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvmPredictPlan {
    /// Support vectors, row-major.
    pub sv_dram: u64,
    /// Queries, row-major.
    pub query_dram: u64,
    /// Scratch for the kernel-value rows, `queries x support_vectors`.
    pub kernel_dram: u64,
    /// `alpha_i * y_i` per support vector.
    pub alpha_dram: u64,
    /// Decision values out (before the bias), `queries`.
    pub out_dram: u64,
}

impl SvmPredict {
    /// Generates the two-stage program (RBF kernel with `gamma` folded
    /// into the data scaling, evaluated by the Misc-stage interpolator).
    ///
    /// # Errors
    ///
    /// Tiling errors from the underlying generators.
    pub fn generate(
        &self,
        cfg: &ArchConfig,
        plan: &SvmPredictPlan,
    ) -> Result<Program, CodegenError> {
        let kernel_stage = DistanceKernel {
            name: "svm-kern",
            features: self.features,
            hot_rows: self.support_vectors,
            cold_rows: self.queries,
            post: DistancePost::Interp(NonLinearFn::ExpNeg),
        };
        let mut program = kernel_stage.generate(
            cfg,
            &DistancePlan {
                hot_dram: plan.sv_dram,
                cold_dram: plan.query_dram,
                out_dram: plan.kernel_dram,
            },
        )?;
        let reduce = BroadcastDot {
            name: "svm-dec",
            width: self.support_vectors,
            cold_rows: self.queries,
            activation: None,
        };
        program.extend(reduce.generate(
            cfg,
            &BroadcastPlan {
                hot_dram: plan.alpha_dram,
                cold_dram: plan.kernel_dram,
                out_dram: plan.out_dram,
            },
        )?);
        Ok(program)
    }
}

/// The centroid-update normalisation of one Lloyd iteration: given
/// per-cluster coordinate sums (seeded from DRAM) and per-cluster counts
/// replicated across the feature positions, divides elementwise on the
/// ALUs and stores the new centroids.
///
/// The gather of sums/counts from the assignment output is host/DMA
/// bookkeeping (scatter-accumulate is not an MLU dataflow); the paper
/// likewise leaves "the rest operations" to the lightweight ALUs.
///
/// # Errors
///
/// [`CodegenError::EmptyWorkload`] for zero dimensions;
/// [`CodegenError::OutputTooWide`] if one centroid block exceeds the
/// OutputBuf.
pub fn kmeans_update_program(
    cfg: &ArchConfig,
    k: usize,
    features: usize,
    sums_dram: u64,
    counts_dram: u64,
    centroids_dram: u64,
) -> Result<Program, CodegenError> {
    if k == 0 || features == 0 {
        return Err(CodegenError::EmptyWorkload);
    }
    let out_cap = cfg.outputbuf_elems() as usize;
    if features > out_cap {
        return Err(CodegenError::OutputTooWide { required: features, available: out_cap });
    }
    let block = (out_cap / features).min(k).max(1);
    let mut insts = Vec::new();
    let mut c0 = 0usize;
    while c0 < k {
        let cb = block.min(k - c0);
        insts.push(Instruction {
            name: "kmeans-upd".into(),
            hot: BufferRead::null(),
            cold: BufferRead::load(
                counts_dram + (c0 * features) as u64,
                0,
                features as u32,
                cb as u32,
            ),
            out: OutputSlot {
                read_op: ReadOp::Load,
                read_dram_addr: sums_dram + (c0 * features) as u64,
                addr: 0,
                stride: features as u32,
                iter: cb as u32,
                write_op: WriteOp::Store,
                write_dram_addr: centroids_dram + (c0 * features) as u64,
            },
            fu: FuOps::alu_only(AluOp::Div),
            hot_row_base: 0,
        });
        c0 += cb;
    }
    Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};

    #[test]
    fn kmeans_update_divides_sums_by_counts() {
        let cfg = ArchConfig::paper_default();
        let (k, f) = (3usize, 4usize);
        let mut dram = Dram::new(1 << 16);
        // sums: cluster c sums are (c+1) * 10 per coordinate; counts 2, 5, 10.
        for c in 0..k {
            dram.write_f32((c * f) as u64, &vec![(c as f32 + 1.0) * 10.0; f]);
        }
        let counts = [2.0f32, 5.0, 10.0];
        for (c, &count) in counts.iter().enumerate() {
            dram.write_f32(1000 + (c * f) as u64, &vec![count; f]);
        }
        let program = kmeans_update_program(&cfg, k, f, 0, 1000, 2000).unwrap();
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();
        let expected = [5.0f32, 4.0, 3.0];
        for (c, &want) in expected.iter().enumerate() {
            let row = dram.read_f32(2000 + (c * f) as u64, f);
            for &v in &row {
                assert_eq!(v, want, "cluster {c}");
            }
        }
    }

    #[test]
    fn kmeans_update_blocks_over_output_capacity() {
        let cfg = ArchConfig::paper_default();
        // 8 clusters x 1024 features = 2 per block (OutputBuf 2048 elems).
        let program = kmeans_update_program(&cfg, 8, 1024, 0, 100_000, 200_000).unwrap();
        assert_eq!(program.len(), 4);
        assert!(kmeans_update_program(&cfg, 1, 4096, 0, 0, 0).is_err());
    }

    #[test]
    fn mlp_forward_validation() {
        let cfg = ArchConfig::paper_default();
        let net = MlpForward { widths: vec![4, 3, 2], batch: 2, activation: NonLinearFn::Sigmoid };
        assert_eq!(net.aug_width(0), 5);
        // Wrong plan shape.
        let bad = MlpForwardPlan { weights: vec![0], activations: vec![0, 0, 0] };
        assert!(matches!(net.generate(&cfg, &bad), Err(CodegenError::Unsupported(_))));
        let empty = MlpForward { widths: vec![4], batch: 2, activation: NonLinearFn::Sigmoid };
        assert!(matches!(
            empty.generate(&cfg, &MlpForwardPlan { weights: vec![], activations: vec![0] }),
            Err(CodegenError::EmptyWorkload)
        ));
    }
}

/// One full-batch gradient-descent step of linear regression, entirely on
/// the accelerator (Section 2.4's training phase):
///
/// 1. `err = theta . x_i - y_i` per instance — a broadcast dot seeded
///    with `-y`;
/// 2. `grad = sum_i err_i * x_i` — the weighted-sum dataflow;
/// 3. `theta += (-lr / n) * grad` — the same dataflow with one scalar.
///
/// Single-block version: the caller supplies `-y` at `neg_targets_dram`
/// and the scalar `-lr / n` at `step_dram`; larger problems chain steps
/// over instance blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LrGdStep {
    /// Coefficients (no intercept; augment features for one).
    pub width: usize,
    /// Instances in the batch.
    pub instances: usize,
}

/// DRAM placement for [`LrGdStep`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LrGdStepPlan {
    /// Coefficients, `width` f32 (read and updated in place).
    pub theta_dram: u64,
    /// Instances, row-major `instances x width`.
    pub x_dram: u64,
    /// Negated targets `-y`, `instances` f32.
    pub neg_targets_dram: u64,
    /// Scratch for the per-instance errors, `instances` f32.
    pub err_dram: u64,
    /// Scratch for the gradient, `width` f32.
    pub grad_dram: u64,
    /// The scalar `-lr / n`, 1 f32.
    pub step_dram: u64,
}

impl LrGdStep {
    /// Generates the three-instruction step.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions;
    /// [`CodegenError::RowTooWide`] when the batch does not fit the
    /// single-block constraints (theta and one instance block resident,
    /// the error row in HotBuf, the gradient in OutputBuf).
    pub fn generate(&self, cfg: &ArchConfig, plan: &LrGdStepPlan) -> Result<Program, CodegenError> {
        if self.width == 0 || self.instances == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let out_cap = cfg.outputbuf_elems() as usize;
        if self.width > hot_half || self.instances > hot_half {
            return Err(CodegenError::RowTooWide {
                width: self.width.max(self.instances),
                available: hot_half,
            });
        }
        if self.instances * self.width > cold_half {
            return Err(CodegenError::RowTooWide {
                width: self.instances * self.width,
                available: cold_half,
            });
        }
        if self.width > out_cap || self.instances > out_cap {
            return Err(CodegenError::OutputTooWide {
                required: self.width.max(self.instances),
                available: out_cap,
            });
        }
        let (w, n) = (self.width as u32, self.instances as u32);
        // 1. Errors: dot each instance with theta, seeded with -y.
        let errors = Instruction {
            name: "lr-err".into(),
            hot: BufferRead::load(plan.theta_dram, 0, w, 1),
            cold: BufferRead::load(plan.x_dram, 0, w, n),
            out: OutputSlot {
                read_op: ReadOp::Load,
                read_dram_addr: plan.neg_targets_dram,
                addr: 0,
                stride: 1,
                iter: n,
                write_op: WriteOp::Store,
                write_dram_addr: plan.err_dram,
            },
            fu: FuOps::dot_broadcast(None),
            hot_row_base: 0,
        };
        // 2. Gradient: weighted column sum of the instances by the errors
        //    (the instance block is still resident in ColdBuf: READ).
        let gradient = Instruction {
            name: "lr-grad".into(),
            hot: BufferRead::load(plan.err_dram, 0, n, 1),
            cold: BufferRead::read(0, w, n),
            out: OutputSlot::store(plan.grad_dram, w, 1),
            fu: FuOps::weighted_sum(),
            hot_row_base: 0,
        };
        // 3. Update: theta += (-lr / n) * grad.
        let update = Instruction {
            name: "lr-step".into(),
            hot: BufferRead::load(plan.step_dram, 0, 1, 1),
            cold: BufferRead::load(plan.grad_dram, 0, w, 1),
            out: OutputSlot {
                read_op: ReadOp::Load,
                read_dram_addr: plan.theta_dram,
                addr: 0,
                stride: w,
                iter: 1,
                write_op: WriteOp::Store,
                write_dram_addr: plan.theta_dram,
            },
            fu: FuOps::weighted_sum(),
            hot_row_base: 0,
        };
        Program::new(vec![errors, gradient, update]).map_err(|_| CodegenError::EmptyWorkload)
    }
}

#[cfg(test)]
mod lr_step_tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};

    #[test]
    fn gd_step_matches_software_gradient_descent() {
        let cfg = ArchConfig::paper_default();
        let (d, n, lr) = (12usize, 40usize, 0.4f32);
        let mut dram = Dram::new(1 << 16);
        // Teacher: theta* = [0.5, -0.25, 0.5, -0.25, ...].
        let theta_star: Vec<f32> = (0..d).map(|j| if j % 2 == 0 { 0.5 } else { -0.25 }).collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let row: Vec<f32> = (0..d).map(|j| (((i * 13 + j * 7) % 16) as f32) / 16.0).collect();
            let y: f32 = row.iter().zip(&theta_star).map(|(a, b)| a * b).sum();
            dram.write_f32(1000 + (i * d) as u64, &row);
            xs.push(row);
            ys.push(y);
        }
        let theta0 = vec![0.0f32; d];
        dram.write_f32(0, &theta0);
        let neg_y: Vec<f32> = ys.iter().map(|v| -v).collect();
        dram.write_f32(3000, &neg_y);
        dram.write_f32(5000, &[-lr / n as f32]);

        let step = LrGdStep { width: d, instances: n };
        let plan = LrGdStepPlan {
            theta_dram: 0,
            x_dram: 1000,
            neg_targets_dram: 3000,
            err_dram: 4000,
            grad_dram: 4500,
            step_dram: 5000,
        };
        let program = step.generate(&cfg, &plan).unwrap();
        let mut accel = Accelerator::new(cfg.clone()).unwrap();

        // Take several accelerator GD steps and track the software
        // reference (exact f32 full-batch GD) alongside.
        let mut theta_sw = theta0;
        for _ in 0..120 {
            accel.run(&program, &mut dram).unwrap();
            let mut grad = vec![0.0f32; d];
            for (row, &y) in xs.iter().zip(&ys) {
                let err: f32 = row.iter().zip(&theta_sw).map(|(a, b)| a * b).sum::<f32>() - y;
                for (g, &x) in grad.iter_mut().zip(row) {
                    *g += err * x;
                }
            }
            for (t, g) in theta_sw.iter_mut().zip(&grad) {
                *t -= lr / n as f32 * g;
            }
        }
        let theta_accel = dram.read_f32(0, d);
        for (j, (&a, &s)) in theta_accel.iter().zip(&theta_sw).enumerate() {
            assert!((a - s).abs() < 0.1, "theta[{j}]: accel {a} vs software {s}");
        }
        // And both must be approaching the teacher.
        let dist: f32 = theta_accel.iter().zip(&theta_star).map(|(a, b)| (a - b) * (a - b)).sum();
        let dist0: f32 = theta_star.iter().map(|v| v * v).sum();
        // Ill-conditioned directions (features in [0,1) share a large mean
        // component) converge slowly; 7x error reduction in 120 steps is
        // the f32 reference's own behaviour here.
        assert!(dist < dist0 / 5.0, "training must make progress: {dist} vs {dist0}");
    }

    #[test]
    fn gd_step_validation() {
        let cfg = ArchConfig::paper_default();
        let plan = LrGdStepPlan {
            theta_dram: 0,
            x_dram: 0,
            neg_targets_dram: 0,
            err_dram: 0,
            grad_dram: 0,
            step_dram: 0,
        };
        assert!(LrGdStep { width: 0, instances: 4 }.generate(&cfg, &plan).is_err());
        assert!(LrGdStep { width: 4, instances: 5000 }.generate(&cfg, &plan).is_err());
        assert!(LrGdStep { width: 3000, instances: 4 }.generate(&cfg, &plan).is_err());
    }
}

/// One back-propagation SGD step through an MLP for a single instance,
/// entirely on the accelerator (Section 2.3's "global training" mode).
///
/// Prerequisites the host prepares once (all tiny):
/// - the forward pass has run ([`MlpForward`] with batch 1), so every
///   layer's augmented activations sit at `forward.activations`;
/// - the *output-layer* delta `(a - t) * a * (1 - a)` (a `widths.last()`
///   vector) sits at `out_delta_dram` — a handful of scalar ops on the
///   final 10-neuron layer;
/// - a row of ones (max layer width long) at `ones_dram`, and the scalar
///   `-lr` at `neg_lr_dram`.
///
/// Per connection layer `l` (deep to shallow) the generator emits:
/// 1. `s = delta_l . W_l` (weighted column sum over the weight rows) —
///    the back-propagated pre-derivative signal;
/// 2. `one_minus_a = ones + (-1) * a_l` (weighted sum, seeded);
/// 3. `delta_{l-1} = s * a_l * one_minus_a` (two elementwise ALU
///    multiplies) — the sigmoid derivative from the output values;
/// 4. `scaled = (-lr) * delta_l` (weighted sum);
/// 5. one weighted-sum per output neuron: `W_l[o] += scaled[o] * a_{l-1}`
///    — the rank-1 weight update (and the bias via the augmented 1).
#[derive(Clone, Debug, PartialEq)]
pub struct MlpBackprop {
    /// Layer widths including input: `[in, h1, ..., out]`.
    pub widths: Vec<usize>,
}

/// DRAM placement for [`MlpBackprop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlpBackpropPlan {
    /// Augmented weight bases, as in [`MlpForwardPlan::weights`].
    pub weights: Vec<u64>,
    /// Augmented activation bases for one instance, as in
    /// [`MlpForwardPlan::activations`] with batch 1.
    pub activations: Vec<u64>,
    /// Output-layer delta (host-computed), `widths.last()` f32.
    pub out_delta_dram: u64,
    /// Scratch: per-layer delta vectors, each `max(widths)` f32 apart.
    pub delta_scratch_dram: u64,
    /// Scratch: back-propagated signal / derivative temporaries, 3 rows
    /// of `max(widths) + 1` f32.
    pub tmp_dram: u64,
    /// A row of ones, at least `max(widths) + 1` long.
    pub ones_dram: u64,
    /// The scalar `-lr`.
    pub neg_lr_dram: u64,
    /// The scalar `-1.0`.
    pub neg_one_dram: u64,
}

impl MlpBackprop {
    /// Generates the backward program for one instance.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for fewer than two layers;
    /// [`CodegenError::Unsupported`] on plan-shape mismatch;
    /// [`CodegenError::RowTooWide`] when a layer exceeds the single-block
    /// buffer constraints (tile wider nets at a higher level).
    #[allow(clippy::too_many_lines)]
    pub fn generate(
        &self,
        cfg: &ArchConfig,
        plan: &MlpBackpropPlan,
    ) -> Result<Program, CodegenError> {
        if self.widths.len() < 2 {
            return Err(CodegenError::EmptyWorkload);
        }
        if plan.weights.len() != self.widths.len() - 1
            || plan.activations.len() != self.widths.len()
        {
            return Err(CodegenError::Unsupported("plan lengths must match the widths"));
        }
        let max_w = *self.widths.iter().max().expect("non-empty") + 1;
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        for pair in self.widths.windows(2) {
            let (na, nb) = (pair[0] + 1, pair[1]);
            if na > hot_half || nb > hot_half || nb * na > cold_half {
                return Err(CodegenError::RowTooWide { width: nb * na, available: cold_half });
            }
        }
        let layers = self.widths.len() - 1;
        // Per-layer delta slots in the scratch region.
        let delta_at = |l: usize| plan.delta_scratch_dram + (l * max_w) as u64;
        let mut insts: Vec<Instruction> = Vec::new();

        // Deltas for the last layer come from the host.
        // (Copy via a 1-scalar weighted sum with weight 1 would also work;
        // we just address the host region directly below.)
        let top_delta = plan.out_delta_dram;

        for l in (0..layers).rev() {
            let na = self.widths[l] + 1; // augmented input width
            let nb = self.widths[l + 1];
            let delta_l = if l == layers - 1 { top_delta } else { delta_at(l + 1) };

            if l > 0 {
                // 1. s = delta . W (over the augmented rows; position 0 is
                //    the bias column, discarded below by addressing 1..).
                insts.push(Instruction {
                    name: "bp-signal".into(),
                    hot: BufferRead::load(delta_l, 0, nb as u32, 1),
                    cold: BufferRead::load(plan.weights[l], 0, na as u32, nb as u32),
                    out: OutputSlot::store(plan.tmp_dram, na as u32, 1),
                    fu: FuOps::weighted_sum(),
                    hot_row_base: 0,
                });
                // 2. one_minus_a = ones + (-1) * a_l (augmented row).
                insts.push(Instruction {
                    name: "bp-ones".into(),
                    hot: BufferRead::load(plan.neg_one_dram, 0, 1, 1),
                    cold: BufferRead::load(plan.activations[l], 0, na as u32, 1),
                    out: OutputSlot {
                        read_op: ReadOp::Load,
                        read_dram_addr: plan.ones_dram,
                        addr: 0,
                        stride: na as u32,
                        iter: 1,
                        write_op: WriteOp::Store,
                        write_dram_addr: plan.tmp_dram + max_w as u64,
                    },
                    fu: FuOps::weighted_sum(),
                    hot_row_base: 0,
                });
                // 3a. s *= a_l.
                insts.push(Instruction {
                    name: "bp-deriv".into(),
                    hot: BufferRead::null(),
                    cold: BufferRead::load(plan.activations[l], 0, na as u32, 1),
                    out: OutputSlot {
                        read_op: ReadOp::Load,
                        read_dram_addr: plan.tmp_dram,
                        addr: 0,
                        stride: na as u32,
                        iter: 1,
                        write_op: WriteOp::Store,
                        write_dram_addr: plan.tmp_dram,
                    },
                    fu: FuOps::alu_only(AluOp::MulRows),
                    hot_row_base: 0,
                });
                // 3b. s *= (1 - a_l); position 1.. is delta_{l} for the
                //     layer below (position 0 is the bias slot, unused).
                insts.push(Instruction {
                    name: "bp-deriv".into(),
                    hot: BufferRead::null(),
                    cold: BufferRead::load(plan.tmp_dram + max_w as u64, 0, na as u32, 1),
                    out: OutputSlot {
                        read_op: ReadOp::Load,
                        read_dram_addr: plan.tmp_dram,
                        addr: 0,
                        stride: na as u32,
                        iter: 1,
                        write_op: WriteOp::Store,
                        write_dram_addr: delta_at(l) - 1, // so [1..] aligns at delta_at(l)
                    },
                    fu: FuOps::alu_only(AluOp::MulRows),
                    hot_row_base: 0,
                });
            }

            // 4. scaled = (-lr) * delta_l.
            let scaled_at = plan.tmp_dram + 2 * max_w as u64;
            insts.push(Instruction {
                name: "bp-scale".into(),
                hot: BufferRead::load(plan.neg_lr_dram, 0, 1, 1),
                cold: BufferRead::load(delta_l, 0, nb as u32, 1),
                out: OutputSlot::store(scaled_at, nb as u32, 1),
                fu: FuOps::weighted_sum(),
                hot_row_base: 0,
            });
            // 5. Rank-1 weight updates, one augmented row per output
            //    neuron.
            for o in 0..nb {
                let row_at = plan.weights[l] + (o * na) as u64;
                insts.push(Instruction {
                    name: "bp-update".into(),
                    hot: BufferRead::load(scaled_at + o as u64, 0, 1, 1),
                    cold: BufferRead::load(plan.activations[l], 0, na as u32, 1),
                    out: OutputSlot {
                        read_op: ReadOp::Load,
                        read_dram_addr: row_at,
                        addr: 0,
                        stride: na as u32,
                        iter: 1,
                        write_op: WriteOp::Store,
                        write_dram_addr: row_at,
                    },
                    fu: FuOps::weighted_sum(),
                    hot_row_base: 0,
                });
            }
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}
