//! Naive-Bayes program generation (Section 2.6).
//!
//! Training counts feature-value occurrences per class with the Counter
//! stage; instances are expected **grouped by label** in DRAM — the
//! pre-processing the paper recommends ("one can pre-process training
//! instances so that they are grouped according to their labels").
//! Prediction multiplies conditional probabilities per class with the
//! ProductReduce dataflow (the phase where PuDianNao trails the GPU).

use crate::error::CodegenError;
use pudiannao_accel::isa::{BufferRead, CounterOp, FuOps, Instruction, OutputSlot, Program};
use pudiannao_accel::ArchConfig;

/// NB training counting over class-grouped instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NbTrainKernel {
    /// Discrete features per instance.
    pub features: usize,
    /// Values per feature (`a`).
    pub values: usize,
    /// Instances per class group, in DRAM order.
    pub class_counts: Vec<usize>,
}

/// DRAM placement for NB training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbTrainPlan {
    /// Instances grouped by class, row-major `sum(class_counts) x features`.
    pub instances_dram: u64,
    /// Candidate rows, `values x features` (see [`candidate_rows`]).
    pub candidates_dram: u64,
    /// Counters out: `classes x values x features`.
    pub counters_dram: u64,
}

/// Builds the candidate rows the Counter stage compares against: row `v`
/// holds value `v` at every feature position.
#[must_use]
pub fn candidate_rows(values: usize, features: usize) -> Vec<f32> {
    let mut rows = Vec::with_capacity(values * features);
    for v in 0..values {
        rows.extend(std::iter::repeat_n(v as f32, features));
    }
    rows
}

impl NbTrainKernel {
    /// Generates one counting pass per class group, accumulating the
    /// class's `values x features` counter block in the OutputBuf and
    /// storing it when the group ends.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions;
    /// [`CodegenError::RowTooWide`] / [`CodegenError::OutputTooWide`] when
    /// the candidate set or counter block does not fit.
    pub fn generate(&self, cfg: &ArchConfig, plan: &NbTrainPlan) -> Result<Program, CodegenError> {
        if self.features == 0 || self.values == 0 || self.class_counts.is_empty() {
            return Err(CodegenError::EmptyWorkload);
        }
        let f = self.features;
        let hot_half = cfg.hotbuf_elems() as usize / 2;
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        let out_cap = cfg.outputbuf_elems() as usize;
        if self.values * f > hot_half {
            return Err(CodegenError::RowTooWide { width: self.values * f, available: hot_half });
        }
        if self.values * f > out_cap {
            return Err(CodegenError::OutputTooWide {
                required: self.values * f,
                available: out_cap,
            });
        }
        let cold_block = (cold_half / f).max(1);
        let counters_per_class = (self.values * f) as u64;

        let mut insts = Vec::new();
        let mut row0 = 0usize;
        let mut cold_parity = 0u32;
        for (class, &count) in self.class_counts.iter().enumerate() {
            if count == 0 {
                row0 += count;
                continue;
            }
            let dest = plan.counters_dram + class as u64 * counters_per_class;
            let mut c0 = 0usize;
            while c0 < count {
                let cb = cold_block.min(count - c0);
                let first = c0 == 0;
                let last = c0 + cb == count;
                let hot = if insts.is_empty() {
                    BufferRead::load(plan.candidates_dram, 0, f as u32, self.values as u32)
                } else {
                    BufferRead::read(0, f as u32, self.values as u32)
                };
                let cold = BufferRead::load(
                    plan.instances_dram + ((row0 + c0) * f) as u64,
                    cold_parity * (cold_half as u32),
                    f as u32,
                    cb as u32,
                );
                cold_parity ^= 1;
                let out = match (first, last) {
                    (true, true) => OutputSlot::store(dest, f as u32, self.values as u32),
                    (true, false) => OutputSlot::write(0, f as u32, self.values as u32),
                    (false, true) => {
                        OutputSlot::accumulate_store(0, f as u32, self.values as u32, dest)
                    }
                    (false, false) => OutputSlot::accumulate(0, f as u32, self.values as u32),
                };
                insts.push(Instruction {
                    name: "nb-train".into(),
                    hot,
                    cold,
                    out,
                    fu: FuOps::count(CounterOp::CountEq),
                    hot_row_base: 0,
                });
                c0 += cb;
            }
            row0 += count;
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

/// NB prediction: probability products per (instance, class) row.
///
/// The DMA gathers each instance's per-feature conditional probabilities
/// (selected by its feature values) plus the class prior into one row of
/// `features + 1` values; this kernel multiplies the rows down to
/// posterior scores. The gather itself is data-dependent — on hardware it
/// is DMA descriptor work, here the host pre-gathers into
/// `rows_dram` (see the integration tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbPredictKernel {
    /// Number of rows (`instances x classes`).
    pub rows: usize,
    /// Row width (`features + 1` for the prior).
    pub width: usize,
}

/// DRAM placement for NB prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbPredictPlan {
    /// Gathered probability rows, row-major `rows x width`.
    pub rows_dram: u64,
    /// Posterior scores out, `rows` f32 values.
    pub out_dram: u64,
}

impl NbPredictKernel {
    /// Generates the product-reduction program.
    ///
    /// # Errors
    ///
    /// [`CodegenError::EmptyWorkload`] for zero dimensions;
    /// [`CodegenError::RowTooWide`] if one row exceeds a ColdBuf half.
    pub fn generate(
        &self,
        cfg: &ArchConfig,
        plan: &NbPredictPlan,
    ) -> Result<Program, CodegenError> {
        if self.rows == 0 || self.width == 0 {
            return Err(CodegenError::EmptyWorkload);
        }
        let cold_half = cfg.coldbuf_elems() as usize / 2;
        if self.width > cold_half {
            return Err(CodegenError::RowTooWide { width: self.width, available: cold_half });
        }
        let block = (cold_half / self.width).min(cfg.outputbuf_elems() as usize).max(1);
        let mut insts = Vec::new();
        let mut r0 = 0usize;
        let mut parity = 0u32;
        while r0 < self.rows {
            let rb = block.min(self.rows - r0);
            insts.push(Instruction {
                name: "nb-predict".into(),
                hot: BufferRead::null(),
                cold: BufferRead::load(
                    plan.rows_dram + (r0 * self.width) as u64,
                    parity * (cold_half as u32),
                    self.width as u32,
                    rb as u32,
                ),
                out: OutputSlot::store(plan.out_dram + r0 as u64, 1, rb as u32),
                fu: FuOps::product_reduce(),
                hot_row_base: 0,
            });
            parity ^= 1;
            r0 += rb;
        }
        Program::new(insts).map_err(|_| CodegenError::EmptyWorkload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pudiannao_accel::{Accelerator, Dram};

    #[test]
    fn candidate_rows_layout() {
        let rows = candidate_rows(3, 2);
        assert_eq!(rows, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn training_counts_match_software_frequencies() {
        let cfg = ArchConfig::paper_default();
        let (features, values) = (4usize, 3usize);
        // Two classes, grouped: class 0 = 3 instances, class 1 = 2.
        let data: Vec<Vec<f32>> = vec![
            vec![0.0, 1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 2.0, 2.0],
            vec![2.0, 0.0, 0.0, 1.0],
            vec![2.0, 0.0, 1.0, 1.0],
        ];
        let mut dram = Dram::new(1 << 16);
        for (i, row) in data.iter().enumerate() {
            dram.write_f32((i * features) as u64, row);
        }
        dram.write_f32(1000, &candidate_rows(values, features));
        let kernel = NbTrainKernel { features, values, class_counts: vec![3, 2] };
        let plan = NbTrainPlan { instances_dram: 0, candidates_dram: 1000, counters_dram: 2000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();

        // Software counts.
        let groups: [&[Vec<f32>]; 2] = [&data[0..3], &data[3..5]];
        for (class, group) in groups.iter().enumerate() {
            let counters =
                dram.read_f32(2000 + (class * values * features) as u64, values * features);
            for v in 0..values {
                for f in 0..features {
                    let expect = group.iter().filter(|r| r[f] == v as f32).count() as f32;
                    assert_eq!(
                        counters[v * features + f],
                        expect,
                        "class {class} value {v} feature {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_blocks_accumulate_across_instructions() {
        // A class group bigger than one cold block must still produce the
        // same counters as a single pass.
        let cfg = ArchConfig::paper_default();
        let features = 512usize; // cold half = 4096 elems -> 8 rows/block
        let n = 20usize;
        let mut dram = Dram::new(1 << 20);
        for i in 0..n {
            let row: Vec<f32> = (0..features).map(|j| ((i + j) % 2) as f32).collect();
            dram.write_f32((i * features) as u64, &row);
        }
        dram.write_f32(100_000, &candidate_rows(2, features));
        let kernel = NbTrainKernel { features, values: 2, class_counts: vec![n] };
        let plan =
            NbTrainPlan { instances_dram: 0, candidates_dram: 100_000, counters_dram: 200_000 };
        let program = kernel.generate(&cfg, &plan).unwrap();
        assert!(program.len() > 1, "expected multiple cold blocks");
        Accelerator::new(cfg).unwrap().run(&program, &mut dram).unwrap();
        let counters = dram.read_f32(200_000, 2 * features);
        // Position j: value (i + j) % 2 -> exactly 10 of each.
        for j in 0..features {
            assert_eq!(counters[j], 10.0, "value 0, feature {j}");
            assert_eq!(counters[features + j], 10.0, "value 1, feature {j}");
        }
    }

    #[test]
    fn prediction_products_match_software() {
        let cfg = ArchConfig::paper_default();
        let rows: Vec<Vec<f32>> =
            vec![vec![0.5, 0.25, 0.2], vec![0.9, 0.8, 0.1], vec![1.0, 1.0, 1.0]];
        let mut dram = Dram::new(1 << 16);
        for (i, r) in rows.iter().enumerate() {
            dram.write_f32((i * 3) as u64, r);
        }
        let kernel = NbPredictKernel { rows: 3, width: 3 };
        let plan = NbPredictPlan { rows_dram: 0, out_dram: 1000 };
        Accelerator::new(cfg.clone())
            .unwrap()
            .run(&kernel.generate(&cfg, &plan).unwrap(), &mut dram)
            .unwrap();
        let out = dram.read_f32(1000, 3);
        for (i, r) in rows.iter().enumerate() {
            let expect: f32 = r.iter().product();
            assert!((out[i] - expect).abs() < 1e-3, "row {i}: {} vs {expect}", out[i]);
        }
    }

    #[test]
    fn validation() {
        let cfg = ArchConfig::paper_default();
        assert!(NbTrainKernel { features: 0, values: 2, class_counts: vec![1] }
            .generate(
                &cfg,
                &NbTrainPlan { instances_dram: 0, candidates_dram: 0, counters_dram: 0 }
            )
            .is_err());
        assert!(matches!(
            NbTrainKernel { features: 2048, values: 4, class_counts: vec![1] }.generate(
                &cfg,
                &NbTrainPlan { instances_dram: 0, candidates_dram: 0, counters_dram: 0 }
            ),
            Err(CodegenError::RowTooWide { .. })
        ));
        assert!(matches!(
            NbPredictKernel { rows: 4, width: 9000 }
                .generate(&cfg, &NbPredictPlan { rows_dram: 0, out_dram: 0 }),
            Err(CodegenError::RowTooWide { .. })
        ));
    }
}
