//! Discrete naive Bayes (Section 2.6).
//!
//! Training performs frequency estimates — "NB maintains a temporary
//! counter for each item ... By streaming in features and label of
//! training instances, NB completes all frequency estimates, and
//! normalize the frequencies to get all conditional probabilities."
//! Prediction multiplies the `d` per-feature conditional probabilities
//! per class and takes the arg-max (the phase where PuDianNao loses to
//! the GPU, 0.37x, for lack of a big register file).

use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Matrix};

/// Configuration for [`NaiveBayes::fit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NbConfig {
    /// Number of discrete values each feature can take (`a`). Features
    /// must be integer-coded in `0..values`.
    pub values: usize,
    /// Laplace smoothing strength added to every counter.
    pub alpha: f64,
    /// Evaluate posteriors as straight probability products (the paper's
    /// hardware does repeated multiplications) instead of log-space sums.
    /// Product space risks underflow for large `d`; the default follows
    /// the hardware.
    pub log_space: bool,
}

impl Default for NbConfig {
    fn default() -> NbConfig {
        NbConfig { values: 2, alpha: 1.0, log_space: false }
    }
}

/// A trained discrete naive-Bayes classifier.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::nb::{NaiveBayes, NbConfig};
///
/// let data = synth::categorical(&synth::CategoricalConfig {
///     instances: 1000, features: 8, values: 5, classes: 5, seed: 4,
/// });
/// let model = NaiveBayes::fit(&data, NbConfig { values: 5, ..Default::default() })?;
/// let pred = model.predict(&data.features)?;
/// let acc = pudiannao_mlkit::metrics::accuracy(&pred, &data.labels);
/// assert!(acc > 0.8);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    /// `p(F_i = v | C = c)` flattened as `[(i * values + v) * classes + c]`.
    cond: Vec<f64>,
    /// `p(C = c)`.
    prior: Vec<f64>,
    features: usize,
    values: usize,
    classes: usize,
    log_space: bool,
}

impl NaiveBayes {
    /// Estimates priors and conditional-probability tables by counting.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`] if
    /// `values` is zero or a feature value falls outside `0..values`.
    pub fn fit(data: &ClassDataset, config: NbConfig) -> Result<NaiveBayes> {
        let n = data.len();
        let d = data.features.cols();
        if n == 0 || d == 0 {
            return Err(Error::EmptyDataset);
        }
        if config.values == 0 {
            return Err(Error::InvalidConfig("values must be > 0"));
        }
        if !(config.alpha >= 0.0) {
            return Err(Error::InvalidConfig("alpha must be non-negative"));
        }
        let classes = data.classes();
        let a = config.values;

        // The temporary counters of Section 2.6: d x a x b.
        let mut counters = vec![0u64; d * a * classes];
        let mut class_counts = vec![0u64; classes];
        for i in 0..n {
            let c = data.labels[i];
            class_counts[c] += 1;
            for (f, &raw) in data.instance(i).iter().enumerate() {
                let v = raw as usize;
                if raw < 0.0 || v >= a || raw.fract() != 0.0 {
                    return Err(Error::InvalidConfig(
                        "feature values must be integers in 0..values",
                    ));
                }
                counters[(f * a + v) * classes + c] += 1;
            }
        }

        // Normalise with Laplace smoothing.
        let mut cond = vec![0.0f64; d * a * classes];
        for f in 0..d {
            for v in 0..a {
                for c in 0..classes {
                    let num = counters[(f * a + v) * classes + c] as f64 + config.alpha;
                    let den = class_counts[c] as f64 + config.alpha * a as f64;
                    cond[(f * a + v) * classes + c] = num / den;
                }
            }
        }
        let prior = class_counts.iter().map(|&k| k as f64 / n as f64).collect();
        Ok(NaiveBayes { cond, prior, features: d, values: a, classes, log_space: config.log_space })
    }

    /// Number of classes learned.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The learned conditional probability `p(F_f = v | C = c)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn conditional(&self, f: usize, v: usize, c: usize) -> f64 {
        assert!(f < self.features && v < self.values && c < self.classes);
        self.cond[(f * self.values + v) * self.classes + c]
    }

    /// Posterior scores for one instance, unnormalised (one per class).
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs;
    /// [`Error::InvalidConfig`] if a feature value is out of range.
    pub fn posterior(&self, x: &[f32]) -> Result<Vec<f64>> {
        if x.len() != self.features {
            return Err(Error::DimensionMismatch { expected: self.features, actual: x.len() });
        }
        let mut scores = if self.log_space {
            self.prior.iter().map(|p| p.max(1e-300).ln()).collect::<Vec<f64>>()
        } else {
            self.prior.clone()
        };
        for (f, &raw) in x.iter().enumerate() {
            let v = raw as usize;
            if raw < 0.0 || v >= self.values || raw.fract() != 0.0 {
                return Err(Error::InvalidConfig("feature values must be integers in 0..values"));
            }
            for (c, s) in scores.iter_mut().enumerate() {
                let p = self.cond[(f * self.values + v) * self.classes + c];
                if self.log_space {
                    *s += p.ln();
                } else {
                    *s *= p;
                }
            }
        }
        Ok(scores)
    }

    /// Predicts the MAP class for one instance.
    ///
    /// # Errors
    ///
    /// Propagates [`NaiveBayes::posterior`] errors.
    pub fn predict_one(&self, x: &[f32]) -> Result<usize> {
        let scores = self.posterior(x)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(c, _)| c)
            .unwrap_or(0))
    }

    /// Predicts every row of `queries`.
    ///
    /// # Errors
    ///
    /// Propagates [`NaiveBayes::posterior`] errors.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<usize>> {
        (0..queries.rows()).map(|i| self.predict_one(queries.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use pudiannao_datasets::{synth, train_test_split};

    fn nursery_like() -> ClassDataset {
        // UCI Nursery shape: 12960 instances, 8 features, 5 classes
        // (scaled down 4x for test speed).
        synth::categorical(&synth::CategoricalConfig {
            instances: 3240,
            features: 8,
            values: 5,
            classes: 5,
            seed: 99,
        })
    }

    #[test]
    fn learns_class_conditional_structure() {
        let data = nursery_like();
        let split = train_test_split(&data, 0.25, 1);
        let model =
            NaiveBayes::fit(&split.train, NbConfig { values: 5, ..Default::default() }).unwrap();
        let acc = accuracy(&model.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn log_space_and_product_space_agree() {
        let data = nursery_like();
        let split = train_test_split(&data, 0.5, 2);
        let prod =
            NaiveBayes::fit(&split.train, NbConfig { values: 5, ..Default::default() }).unwrap();
        let logm = NaiveBayes::fit(
            &split.train,
            NbConfig { values: 5, log_space: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            prod.predict(&split.test.features).unwrap(),
            logm.predict(&split.test.features).unwrap()
        );
    }

    #[test]
    fn conditionals_sum_to_one_over_values() {
        let data = nursery_like();
        let model = NaiveBayes::fit(&data, NbConfig { values: 5, ..Default::default() }).unwrap();
        for f in 0..8 {
            for c in 0..model.classes() {
                let total: f64 = (0..5).map(|v| model.conditional(f, v, c)).sum();
                assert!((total - 1.0).abs() < 1e-9, "f={f} c={c}: {total}");
            }
        }
    }

    #[test]
    fn smoothing_avoids_zero_probabilities() {
        let data = nursery_like();
        let model = NaiveBayes::fit(&data, NbConfig { values: 6, ..Default::default() }).unwrap();
        // Value 5 never occurs (generator emits 0..5), yet smoothing keeps
        // its probability positive.
        assert!(model.conditional(0, 5, 0) > 0.0);
    }

    #[test]
    fn rejects_out_of_range_values() {
        let data = nursery_like();
        assert!(matches!(
            NaiveBayes::fit(&data, NbConfig { values: 3, ..Default::default() }),
            Err(Error::InvalidConfig(_))
        ));
        let model = NaiveBayes::fit(&data, NbConfig { values: 5, ..Default::default() }).unwrap();
        assert!(matches!(model.predict_one(&[9.0; 8]), Err(Error::InvalidConfig(_))));
        assert!(matches!(
            model.predict_one(&[0.0; 3]),
            Err(Error::DimensionMismatch { expected: 8, actual: 3 })
        ));
    }

    #[test]
    fn priors_reflect_class_balance() {
        let data = nursery_like();
        let model = NaiveBayes::fit(&data, NbConfig { values: 5, ..Default::default() }).unwrap();
        // Round-robin labels: priors all ~1/5.
        let p: Vec<f64> = (0..5).map(|c| model.prior[c]).collect();
        for v in p {
            assert!((v - 0.2).abs() < 0.01);
        }
    }
}
