//! Arithmetic-precision modes for the Table-1 study.
//!
//! PuDianNao's MLU uses 16-bit floating-point units in its Adder,
//! Multiplier and Adder-tree stages, but keeps the Counter, Acc and Misc
//! stages at 32 bits "to avoid potential overflow" (Section 3.1.1).
//! Table 1 quantifies that choice: training with *everything* at 16 bits
//! wrecks SVM (37.7%) and LR (78.2%) accuracy, while the mixed scheme
//! stays within a point of full fp32.
//!
//! [`Precision`] selects which scheme the ML kernels' inner loops use:
//!
//! - [`Precision::F32`] — reference fp32 everywhere;
//! - [`Precision::F16All`] — products *and* accumulation rounded to
//!   binary16 (the "all 16bits" column);
//! - [`Precision::Mixed`] — products in binary16, accumulation in fp32
//!   (the hardware's "32bits&16bits" column).

use pudiannao_softfp::F16;

/// One binary16 rounding step on an `f32` value: the `f32` image of
/// `F16::from_f32(x)`. On inputs that are already binary16 values this is
/// the identity (binary16 round-trips exactly through `f32`; `softfp`
/// pins that exhaustively), which is what makes the `*_prequantized`
/// fast paths below bit-identical to their scalar counterparts.
#[inline]
fn round16(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Arithmetic mode used by the precision-aware kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full 32-bit floating point (reference).
    #[default]
    F32,
    /// Everything at binary16, including accumulators.
    F16All,
    /// PuDianNao's scheme: binary16 multiplies/adds feeding a 32-bit
    /// accumulator.
    Mixed,
}

impl Precision {
    /// Rounds a scalar through the mode's storage format.
    #[inline]
    #[must_use]
    pub fn quantize(self, x: f32) -> f32 {
        match self {
            Precision::F32 => x,
            Precision::F16All | Precision::Mixed => F16::from_f32(x).to_f32(),
        }
    }

    /// One multiply in the mode's datapath (inputs are quantised first,
    /// matching operands read from a 16-bit buffer).
    #[inline]
    #[must_use]
    pub fn mul(self, a: f32, b: f32) -> f32 {
        match self {
            Precision::F32 => a * b,
            Precision::F16All | Precision::Mixed => (F16::from_f32(a) * F16::from_f32(b)).to_f32(),
        }
    }

    /// Dot product of two slices in the mode's datapath.
    ///
    /// - `F32`: fp32 multiply-accumulate.
    /// - `F16All`: binary16 products accumulated in binary16.
    /// - `Mixed`: binary16 products accumulated in fp32 (the Acc stage).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn dot(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "dot product needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| a * b).sum(),
            Precision::F16All => {
                let mut acc = F16::ZERO;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc += F16::from_f32(a) * F16::from_f32(b);
                }
                acc.to_f32()
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc += (F16::from_f32(a) * F16::from_f32(b)).to_f32();
                }
                acc
            }
        }
    }

    /// [`Precision::dot`] over slices already rounded through
    /// [`Precision::quantize`] — bit-identical on such inputs, with the
    /// per-element input conversions hoisted out of the inner loop.
    ///
    /// A prequantized operand re-encodes to binary16 losslessly, so
    /// `F16::from_f32(a) * F16::from_f32(b)` collapses to one rounding of
    /// the `f32` product. Callers quantize each row **once** (e.g. with
    /// `pudiannao_softfp::batch::quantize_f32_slice`) instead of once per
    /// pairing; the Table-1 SVM kernel matrix touches every training row
    /// `n` times, so this halves its conversion work and more.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn dot_prequantized(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "dot product needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| a * b).sum(),
            Precision::F16All => {
                // The accumulator stays binary16-exact at every step, so
                // carrying it as `f32` and re-rounding each add matches
                // the `F16` accumulator bit for bit.
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc = round16(acc + round16(a * b));
                }
                acc
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc += round16(a * b);
                }
                acc
            }
        }
    }

    /// Squared Euclidean distance in the mode's datapath: differences and
    /// squares at the mode's width, accumulation per the mode.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn squared_distance(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "distance needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| (a - b) * (a - b)).sum(),
            Precision::F16All => {
                let mut acc = F16::ZERO;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = F16::from_f32(a) - F16::from_f32(b);
                    acc += d * d;
                }
                acc.to_f32()
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = F16::from_f32(a) - F16::from_f32(b);
                    acc += (d * d).to_f32();
                }
                acc
            }
        }
    }

    /// [`Precision::squared_distance`] over slices already rounded
    /// through [`Precision::quantize`] — bit-identical on such inputs,
    /// with the input conversions hoisted out (see
    /// [`Precision::dot_prequantized`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn squared_distance_prequantized(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "distance needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| (a - b) * (a - b)).sum(),
            Precision::F16All => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = round16(a - b);
                    acc = round16(acc + round16(d * d));
                }
                acc
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = round16(a - b);
                    acc += round16(d * d);
                }
                acc
            }
        }
    }

    /// `y += alpha * x` elementwise in the mode's datapath (used by the
    /// gradient-descent updates). The update product is computed at the
    /// mode's width; the stored parameter is quantised afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn axpy(self, alpha: f32, xs: &[f32], ys: &mut [f32]) {
        assert_eq!(xs.len(), ys.len(), "axpy needs equal lengths");
        match self {
            Precision::F32 => {
                for (y, &x) in ys.iter_mut().zip(xs) {
                    *y += alpha * x;
                }
            }
            Precision::F16All => {
                let a = F16::from_f32(alpha);
                for (y, &x) in ys.iter_mut().zip(xs) {
                    let updated = F16::from_f32(*y) + a * F16::from_f32(x);
                    *y = updated.to_f32();
                }
            }
            Precision::Mixed => {
                let a = F16::from_f32(alpha);
                for (y, &x) in ys.iter_mut().zip(xs) {
                    // 16-bit product, 32-bit accumulate-and-store: the
                    // accumulating side lives in the 32-bit Acc stage /
                    // OutputBuf, which is exactly why the paper's mixed
                    // scheme trains well while all-16-bit stalls.
                    let prod = (a * F16::from_f32(x)).to_f32();
                    *y += prod;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_mode_is_exact_reference() {
        let xs = [1.5f32, 2.5, -3.0];
        let ys = [0.5f32, 4.0, 2.0];
        assert_eq!(Precision::F32.dot(&xs, &ys), 1.5 * 0.5 + 2.5 * 4.0 - 3.0 * 2.0);
        assert_eq!(Precision::F32.quantize(0.1), 0.1);
    }

    #[test]
    fn f16_quantization_rounds() {
        let q = Precision::Mixed.quantize(0.1);
        assert_ne!(q, 0.1);
        assert!((q - 0.1).abs() < 1e-4);
    }

    #[test]
    fn mixed_accumulates_better_than_all16() {
        // Summing many small products: binary16 accumulation stalls once
        // the accumulator's ulp exceeds the addend (the classic Table-1
        // failure), while the mixed mode keeps absorbing them.
        let n = 4096;
        let xs = vec![0.5f32; n];
        let ys = vec![0.5f32; n];
        let exact = 0.25 * n as f32; // 1024
        let all16 = Precision::F16All.dot(&xs, &ys);
        let mixed = Precision::Mixed.dot(&xs, &ys);
        assert!((mixed - exact).abs() / exact < 1e-3, "mixed={mixed}");
        assert!((all16 - exact).abs() / exact > 0.2, "all16={all16} should stall");
    }

    #[test]
    fn distances_agree_at_fp32_scale() {
        let xs = [0.1f32, 0.9, 0.3];
        let ys = [0.2f32, 0.1, 0.4];
        let d32 = Precision::F32.squared_distance(&xs, &ys);
        let dmx = Precision::Mixed.squared_distance(&xs, &ys);
        assert!((d32 - dmx).abs() < 1e-2);
    }

    #[test]
    fn axpy_modes() {
        let xs = [1.0f32, 2.0];
        let mut y32 = [0.0f32, 0.0];
        Precision::F32.axpy(0.5, &xs, &mut y32);
        assert_eq!(y32, [0.5, 1.0]);
        let mut y16 = [0.0f32, 0.0];
        Precision::F16All.axpy(0.5, &xs, &mut y16);
        assert_eq!(y16, [0.5, 1.0]); // exactly representable
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_dot_panics() {
        let _ = Precision::F32.dot(&[1.0], &[1.0, 2.0]);
    }

    /// Deterministic value mix covering normals, subnormal-range,
    /// large-magnitude (binary16 overflow), negatives, and exact zeros.
    fn stress_values(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let u = (state >> 33) as u32;
                let frac = (u & 0xFFFF) as f32 / 65536.0 - 0.5;
                match u % 7 {
                    0 => frac * 1e-6, // near/below binary16 subnormal range
                    1 => frac * 2e5,  // overflows binary16 to infinity
                    2 => 0.0,
                    3 => frac,
                    4 => frac * 100.0,
                    5 => -frac * 3.0,
                    _ => frac * 0.01,
                }
            })
            .collect()
    }

    #[test]
    fn prequantized_dot_is_bit_identical() {
        for precision in [Precision::F32, Precision::F16All, Precision::Mixed] {
            for seed in 0..8u64 {
                let xs = stress_values(seed, 257);
                let ys = stress_values(seed + 100, 257);
                let qxs: Vec<f32> = xs.iter().map(|&v| precision.quantize(v)).collect();
                let qys: Vec<f32> = ys.iter().map(|&v| precision.quantize(v)).collect();
                // The scalar path quantizes internally, so feeding it raw
                // or prequantized inputs must agree; the fast path must
                // match both bit for bit.
                let reference = precision.dot(&xs, &ys);
                let fast = precision.dot_prequantized(&qxs, &qys);
                if precision == Precision::F32 {
                    assert_eq!(reference.to_bits(), precision.dot_prequantized(&xs, &ys).to_bits());
                } else {
                    assert_eq!(reference.to_bits(), fast.to_bits(), "{precision:?} seed {seed}");
                    assert_eq!(fast.to_bits(), precision.dot(&qxs, &qys).to_bits());
                }
            }
        }
    }

    #[test]
    fn prequantized_distance_is_bit_identical() {
        for precision in [Precision::F32, Precision::F16All, Precision::Mixed] {
            for seed in 0..8u64 {
                let xs = stress_values(seed + 50, 193);
                let ys = stress_values(seed + 200, 193);
                let qxs: Vec<f32> = xs.iter().map(|&v| precision.quantize(v)).collect();
                let qys: Vec<f32> = ys.iter().map(|&v| precision.quantize(v)).collect();
                let reference = precision.squared_distance(&xs, &ys);
                let fast = precision.squared_distance_prequantized(&qxs, &qys);
                if precision == Precision::F32 {
                    let raw = precision.squared_distance_prequantized(&xs, &ys);
                    assert_eq!(reference.to_bits(), raw.to_bits());
                } else {
                    assert_eq!(reference.to_bits(), fast.to_bits(), "{precision:?} seed {seed}");
                    assert_eq!(fast.to_bits(), precision.squared_distance(&qxs, &qys).to_bits());
                }
            }
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        for precision in [Precision::F16All, Precision::Mixed] {
            for &v in &stress_values(7, 512) {
                let q = precision.quantize(v);
                assert_eq!(q.to_bits(), precision.quantize(q).to_bits());
            }
        }
    }
}
