//! Arithmetic-precision modes for the Table-1 study.
//!
//! PuDianNao's MLU uses 16-bit floating-point units in its Adder,
//! Multiplier and Adder-tree stages, but keeps the Counter, Acc and Misc
//! stages at 32 bits "to avoid potential overflow" (Section 3.1.1).
//! Table 1 quantifies that choice: training with *everything* at 16 bits
//! wrecks SVM (37.7%) and LR (78.2%) accuracy, while the mixed scheme
//! stays within a point of full fp32.
//!
//! [`Precision`] selects which scheme the ML kernels' inner loops use:
//!
//! - [`Precision::F32`] — reference fp32 everywhere;
//! - [`Precision::F16All`] — products *and* accumulation rounded to
//!   binary16 (the "all 16bits" column);
//! - [`Precision::Mixed`] — products in binary16, accumulation in fp32
//!   (the hardware's "32bits&16bits" column).

use pudiannao_softfp::F16;

/// Arithmetic mode used by the precision-aware kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full 32-bit floating point (reference).
    #[default]
    F32,
    /// Everything at binary16, including accumulators.
    F16All,
    /// PuDianNao's scheme: binary16 multiplies/adds feeding a 32-bit
    /// accumulator.
    Mixed,
}

impl Precision {
    /// Rounds a scalar through the mode's storage format.
    #[inline]
    #[must_use]
    pub fn quantize(self, x: f32) -> f32 {
        match self {
            Precision::F32 => x,
            Precision::F16All | Precision::Mixed => F16::from_f32(x).to_f32(),
        }
    }

    /// One multiply in the mode's datapath (inputs are quantised first,
    /// matching operands read from a 16-bit buffer).
    #[inline]
    #[must_use]
    pub fn mul(self, a: f32, b: f32) -> f32 {
        match self {
            Precision::F32 => a * b,
            Precision::F16All | Precision::Mixed => (F16::from_f32(a) * F16::from_f32(b)).to_f32(),
        }
    }

    /// Dot product of two slices in the mode's datapath.
    ///
    /// - `F32`: fp32 multiply-accumulate.
    /// - `F16All`: binary16 products accumulated in binary16.
    /// - `Mixed`: binary16 products accumulated in fp32 (the Acc stage).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn dot(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "dot product needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| a * b).sum(),
            Precision::F16All => {
                let mut acc = F16::ZERO;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc += F16::from_f32(a) * F16::from_f32(b);
                }
                acc.to_f32()
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    acc += (F16::from_f32(a) * F16::from_f32(b)).to_f32();
                }
                acc
            }
        }
    }

    /// Squared Euclidean distance in the mode's datapath: differences and
    /// squares at the mode's width, accumulation per the mode.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn squared_distance(self, xs: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "distance needs equal lengths");
        match self {
            Precision::F32 => xs.iter().zip(ys).map(|(a, b)| (a - b) * (a - b)).sum(),
            Precision::F16All => {
                let mut acc = F16::ZERO;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = F16::from_f32(a) - F16::from_f32(b);
                    acc += d * d;
                }
                acc.to_f32()
            }
            Precision::Mixed => {
                let mut acc = 0.0f32;
                for (&a, &b) in xs.iter().zip(ys) {
                    let d = F16::from_f32(a) - F16::from_f32(b);
                    acc += (d * d).to_f32();
                }
                acc
            }
        }
    }

    /// `y += alpha * x` elementwise in the mode's datapath (used by the
    /// gradient-descent updates). The update product is computed at the
    /// mode's width; the stored parameter is quantised afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn axpy(self, alpha: f32, xs: &[f32], ys: &mut [f32]) {
        assert_eq!(xs.len(), ys.len(), "axpy needs equal lengths");
        match self {
            Precision::F32 => {
                for (y, &x) in ys.iter_mut().zip(xs) {
                    *y += alpha * x;
                }
            }
            Precision::F16All => {
                let a = F16::from_f32(alpha);
                for (y, &x) in ys.iter_mut().zip(xs) {
                    let updated = F16::from_f32(*y) + a * F16::from_f32(x);
                    *y = updated.to_f32();
                }
            }
            Precision::Mixed => {
                let a = F16::from_f32(alpha);
                for (y, &x) in ys.iter_mut().zip(xs) {
                    // 16-bit product, 32-bit accumulate-and-store: the
                    // accumulating side lives in the 32-bit Acc stage /
                    // OutputBuf, which is exactly why the paper's mixed
                    // scheme trains well while all-16-bit stalls.
                    let prod = (a * F16::from_f32(x)).to_f32();
                    *y += prod;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_mode_is_exact_reference() {
        let xs = [1.5f32, 2.5, -3.0];
        let ys = [0.5f32, 4.0, 2.0];
        assert_eq!(Precision::F32.dot(&xs, &ys), 1.5 * 0.5 + 2.5 * 4.0 - 3.0 * 2.0);
        assert_eq!(Precision::F32.quantize(0.1), 0.1);
    }

    #[test]
    fn f16_quantization_rounds() {
        let q = Precision::Mixed.quantize(0.1);
        assert_ne!(q, 0.1);
        assert!((q - 0.1).abs() < 1e-4);
    }

    #[test]
    fn mixed_accumulates_better_than_all16() {
        // Summing many small products: binary16 accumulation stalls once
        // the accumulator's ulp exceeds the addend (the classic Table-1
        // failure), while the mixed mode keeps absorbing them.
        let n = 4096;
        let xs = vec![0.5f32; n];
        let ys = vec![0.5f32; n];
        let exact = 0.25 * n as f32; // 1024
        let all16 = Precision::F16All.dot(&xs, &ys);
        let mixed = Precision::Mixed.dot(&xs, &ys);
        assert!((mixed - exact).abs() / exact < 1e-3, "mixed={mixed}");
        assert!((all16 - exact).abs() / exact > 0.2, "all16={all16} should stall");
    }

    #[test]
    fn distances_agree_at_fp32_scale() {
        let xs = [0.1f32, 0.9, 0.3];
        let ys = [0.2f32, 0.1, 0.4];
        let d32 = Precision::F32.squared_distance(&xs, &ys);
        let dmx = Precision::Mixed.squared_distance(&xs, &ys);
        assert!((d32 - dmx).abs() < 1e-2);
    }

    #[test]
    fn axpy_modes() {
        let xs = [1.0f32, 2.0];
        let mut y32 = [0.0f32, 0.0];
        Precision::F32.axpy(0.5, &xs, &mut y32);
        assert_eq!(y32, [0.5, 1.0]);
        let mut y16 = [0.0f32, 0.0];
        Precision::F16All.axpy(0.5, &xs, &mut y16);
        assert_eq!(y16, [0.5, 1.0]); // exactly representable
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_dot_panics() {
        let _ = Precision::F32.dot(&[1.0], &[1.0, 2.0]);
    }
}
