//! Support vector machine (Section 2.5) trained with SMO.
//!
//! "A common training algorithm is Sequential Minimal Optimization (SMO).
//! The most time-consuming step in SMO is to compute the N x N kernel
//! matrix." Prediction evaluates `y = sum_i alpha_i y_i k(x, x_i) + b`
//! over the support vectors; the kernel function itself is what the Misc
//! stage's linear-interpolation unit accelerates.

use crate::precision::Precision;
use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kernel functions supported by the SVM (the paper names the radial
/// basis function and tanh kernels as interpolation-unit clients).
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Kernel {
    /// `k(a, b) = a . b`.
    Linear,
    /// `k(a, b) = exp(-gamma * ||a - b||^2)`.
    Rbf {
        /// Width parameter.
        gamma: f32,
    },
    /// `k(a, b) = (a . b + coef)^degree`.
    Poly {
        /// Polynomial degree.
        degree: u32,
        /// Additive constant.
        coef: f32,
    },
    /// `k(a, b) = tanh(scale * a . b + offset)`.
    Sigmoid {
        /// Dot-product scale.
        scale: f32,
        /// Additive offset.
        offset: f32,
    },
}

impl Kernel {
    /// Evaluates the kernel on two instances in the given datapath: the
    /// dot product / distance uses the mode's arithmetic, the non-linear
    /// wrapper runs at 32 bits (it is Misc-stage work).
    #[must_use]
    pub fn eval(&self, precision: Precision, a: &[f32], b: &[f32]) -> f32 {
        match *self {
            Kernel::Linear => precision.dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * precision.squared_distance(a, b)).exp(),
            Kernel::Poly { degree, coef } => (precision.dot(a, b) + coef).powi(degree as i32),
            Kernel::Sigmoid { scale, offset } => (scale * precision.dot(a, b) + offset).tanh(),
        }
    }

    /// [`Kernel::eval`] over operands already rounded through
    /// [`Precision::quantize`] — bit-identical on such inputs, but the
    /// inner loop skips the per-element operand conversions (see
    /// [`Precision::dot_prequantized`]). This is what makes quantizing
    /// the training matrix once per fit pay off: each row enters `n`
    /// kernel evaluations.
    #[must_use]
    pub fn eval_prequantized(&self, precision: Precision, a: &[f32], b: &[f32]) -> f32 {
        match *self {
            Kernel::Linear => precision.dot_prequantized(a, b),
            Kernel::Rbf { gamma } => (-gamma * precision.squared_distance_prequantized(a, b)).exp(),
            Kernel::Poly { degree, coef } => {
                (precision.dot_prequantized(a, b) + coef).powi(degree as i32)
            }
            Kernel::Sigmoid { scale, offset } => {
                (scale * precision.dot_prequantized(a, b) + offset).tanh()
            }
        }
    }
}

/// Rounds every element of a matrix through `precision`'s storage format
/// in one batch pass; returns `None` when that is the identity (fp32).
fn quantize_matrix(precision: Precision, x: &Matrix) -> Option<Matrix> {
    if precision == Precision::F32 {
        return None;
    }
    let mut data = x.as_slice().to_vec();
    pudiannao_softfp::batch::quantize_f32_slice(&mut data);
    Some(Matrix::from_vec(data, x.rows(), x.cols()))
}

/// The full `n x n` kernel matrix over prequantized rows — "the most
/// time-consuming step in SMO". Label-independent, so one-vs-rest
/// training computes it once and shares it across the per-class machines.
fn kernel_matrix(kernel: Kernel, precision: Precision, xq: &Matrix) -> Vec<f32> {
    let n = xq.rows();
    let mut m = vec![0.0f32; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval_prequantized(precision, xq.row(i), xq.row(j));
            m[i * n + j] = v;
            m[j * n + i] = v;
        }
    }
    m
}

/// Input validation shared by the single-machine and one-vs-rest fits.
fn validate_fit(x: &Matrix, y: &[f32], config: &SvmConfig) -> Result<()> {
    let n = x.rows();
    if n == 0 || x.cols() == 0 {
        return Err(Error::EmptyDataset);
    }
    if y.len() != n {
        return Err(Error::DimensionMismatch { expected: n, actual: y.len() });
    }
    if !(config.c > 0.0) {
        return Err(Error::InvalidConfig("C must be positive"));
    }
    if y.iter().any(|&v| v != 1.0 && v != -1.0) {
        return Err(Error::InvalidConfig("binary labels must be -1 or +1"));
    }
    Ok(())
}

/// Configuration for SVM training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvmConfig {
    /// Box constraint C (soft-margin strength).
    pub c: f32,
    /// KKT violation tolerance.
    pub tol: f32,
    /// Consecutive full passes without updates before SMO stops.
    pub max_passes: usize,
    /// Hard cap on total passes (guards non-convergence).
    pub max_iters: usize,
    /// Kernel function.
    pub kernel: Kernel,
    /// Arithmetic mode for kernel computations (Table 1).
    pub precision: Precision,
    /// RNG seed for SMO's second-multiplier choice.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> SvmConfig {
        SvmConfig {
            c: 1.0,
            tol: 1e-3,
            max_passes: 3,
            max_iters: 200,
            kernel: Kernel::Rbf { gamma: 0.5 },
            precision: Precision::F32,
            seed: 0,
        }
    }
}

/// A binary SVM with labels in {-1, +1}.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::svm::{BinarySvm, Kernel, SvmConfig};
///
/// let data = synth::linearly_separable(120, 6, 1.0, 3);
/// let y: Vec<f32> = data.labels.iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();
/// let cfg = SvmConfig { kernel: Kernel::Linear, ..Default::default() };
/// let model = BinarySvm::fit(&data.features, &y, cfg)?;
/// assert!(model.support_vectors() > 0);
/// let mut correct = 0;
/// for i in 0..data.len() {
///     if (model.decision(data.instance(i))? > 0.0) == (y[i] > 0.0) {
///         correct += 1;
///     }
/// }
/// assert!(correct as f64 / data.len() as f64 > 0.95);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct BinarySvm {
    /// Support vectors, stored already rounded through the model's
    /// precision so `decision` can use the prequantized kernel path.
    support: Matrix,
    /// Per support vector: `alpha_i * y_i`.
    alpha_y: Vec<f32>,
    bias: f32,
    kernel: Kernel,
    precision: Precision,
}

impl BinarySvm {
    /// Trains with simplified SMO.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty inputs,
    /// [`Error::DimensionMismatch`] if `y` and `x` disagree,
    /// [`Error::InvalidConfig`] for non-positive `c` or labels outside
    /// {-1, +1}.
    pub fn fit(x: &Matrix, y: &[f32], config: SvmConfig) -> Result<BinarySvm> {
        validate_fit(x, y, &config)?;
        // Quantize the training matrix once up front instead of letting
        // `Kernel::eval` re-round every operand of every pairing — the
        // prequantized evaluations are bit-identical, so the fitted model
        // does not change.
        let xq = quantize_matrix(config.precision, x);
        let xq: &Matrix = xq.as_ref().unwrap_or(x);
        let kmat = kernel_matrix(config.kernel, config.precision, xq);
        Ok(BinarySvm::fit_prepared(xq, y, config, &kmat)?.0)
    }

    /// SMO over an already-quantized matrix and precomputed kernel matrix.
    /// Returns the machine and the support-vector row indices into `xq`
    /// (so a one-vs-rest wrapper can map machines onto shared rows).
    fn fit_prepared(
        xq: &Matrix,
        y: &[f32],
        config: SvmConfig,
        kmat: &[f32],
    ) -> Result<(BinarySvm, Vec<usize>)> {
        validate_fit(xq, y, &config)?;
        let n = xq.rows();
        let p = config.precision;
        let k = |i: usize, j: usize| kmat[i * n + j];

        let mut alpha = vec![0.0f32; n];
        let mut b = 0.0f32;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // In the all-16-bit mode the optimiser state itself lives in
        // 16-bit storage and the decision sums accumulate at 16 bits —
        // this, not the kernel values, is what wrecks the paper's
        // all-16-bit SVM accuracy (Table 1: 37.7%).
        let q = |v: f32| -> f32 {
            if p == crate::precision::Precision::F16All {
                pudiannao_softfp::F16::from_f32(v).to_f32()
            } else {
                v
            }
        };
        let f = |alpha: &[f32], b: f32, i: usize| -> f32 {
            if p == crate::precision::Precision::F16All {
                let mut s = pudiannao_softfp::F16::from_f32(b);
                for j in 0..n {
                    if alpha[j] != 0.0 {
                        let term = pudiannao_softfp::F16::from_f32(alpha[j] * y[j])
                            * pudiannao_softfp::F16::from_f32(k(j, i));
                        s += term;
                    }
                }
                return s.to_f32();
            }
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k(j, i);
                }
            }
            s
        };

        let mut passes = 0;
        let mut iters = 0;
        while passes < config.max_passes && iters < config.max_iters {
            iters += 1;
            let mut changed = 0;
            for i in 0..n {
                let e_i = f(&alpha, b, i) - y[i];
                let violates = (y[i] * e_i < -config.tol && alpha[i] < config.c)
                    || (y[i] * e_i > config.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alpha, b, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    ((aj_old - ai_old).max(0.0), (config.c + aj_old - ai_old).min(config.c))
                } else {
                    ((ai_old + aj_old - config.c).max(0.0), (ai_old + aj_old).min(config.c))
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (e_i - e_j) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = q(ai);
                alpha[j] = q(aj);
                let b1 = b - e_i - y[i] * (ai - ai_old) * k(i, i) - y[j] * (aj - aj_old) * k(i, j);
                let b2 = b - e_j - y[i] * (ai - ai_old) * k(i, j) - y[j] * (aj - aj_old) * k(j, j);
                b = q(if ai > 0.0 && ai < config.c {
                    b1
                } else if aj > 0.0 && aj < config.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                });
                changed += 1;
            }
            passes = if changed == 0 { passes + 1 } else { 0 };
        }

        // Compact to support vectors only, keeping the prequantized rows:
        // `decision` re-rounds its operands anyway, so storing the rounded
        // values changes nothing except skipping that work per query.
        let sv_idx: Vec<usize> = (0..n).filter(|&i| alpha[i] > 0.0).collect();
        let support = xq.select_rows(&sv_idx);
        let alpha_y = sv_idx.iter().map(|&i| alpha[i] * y[i]).collect();
        let machine = BinarySvm { support, alpha_y, bias: b, kernel: config.kernel, precision: p };
        Ok((machine, sv_idx))
    }

    /// Number of support vectors retained.
    #[must_use]
    pub fn support_vectors(&self) -> usize {
        self.alpha_y.len()
    }

    /// The decision value `sum_i alpha_i y_i k(x, sv_i) + b`; positive
    /// means class +1.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn decision(&self, x: &[f32]) -> Result<f32> {
        if x.len() != self.support.cols() {
            return Err(Error::DimensionMismatch {
                expected: self.support.cols(),
                actual: x.len(),
            });
        }
        // Quantize the query once; the stored support vectors are already
        // rounded, so every kernel evaluation takes the prequantized path.
        let quantized;
        let xq: &[f32] = if self.precision == Precision::F32 {
            x
        } else {
            let mut q = x.to_vec();
            pudiannao_softfp::batch::quantize_f32_slice(&mut q);
            quantized = q;
            &quantized
        };
        if self.precision == Precision::F16All {
            // 16-bit accumulation at prediction time, too.
            let mut s = pudiannao_softfp::F16::from_f32(self.bias);
            for (sv, &ay) in self.support.iter_rows().zip(&self.alpha_y) {
                s += pudiannao_softfp::F16::from_f32(ay)
                    * pudiannao_softfp::F16::from_f32(self.kernel.eval_prequantized(
                        self.precision,
                        xq,
                        sv,
                    ));
            }
            return Ok(s.to_f32());
        }
        let mut s = self.bias;
        for (sv, &ay) in self.support.iter_rows().zip(&self.alpha_y) {
            s += ay * self.kernel.eval_prequantized(self.precision, xq, sv);
        }
        Ok(s)
    }

    /// The decision value from precomputed kernel evaluations: `map[i]`
    /// indexes support vector `i`'s entry in `kvals`. Accumulates exactly
    /// like [`BinarySvm::decision`], so with bitwise-equal kernel values
    /// the result is bitwise equal.
    fn decision_from_kernel_values(&self, map: &[u32], kvals: &[f32]) -> f32 {
        if self.precision == Precision::F16All {
            let mut s = pudiannao_softfp::F16::from_f32(self.bias);
            for (&ay, &ri) in self.alpha_y.iter().zip(map) {
                s += pudiannao_softfp::F16::from_f32(ay)
                    * pudiannao_softfp::F16::from_f32(kvals[ri as usize]);
            }
            return s.to_f32();
        }
        let mut s = self.bias;
        for (&ay, &ri) in self.alpha_y.iter().zip(map) {
            s += ay * kvals[ri as usize];
        }
        s
    }
}

/// Support-vector rows shared by the one-vs-rest machines: the union of
/// every machine's support vectors (prequantized), plus each machine's
/// indices into it. One kernel evaluation per union row serves all
/// machines when predicting — the per-class SV sets overlap heavily.
#[derive(Clone, Debug)]
struct SharedSupport {
    rows: Matrix,
    /// Per machine, parallel to its `alpha_y`: positions in `rows`.
    maps: Vec<Vec<u32>>,
}

/// Multi-class SVM via one-vs-rest over [`BinarySvm`].
#[derive(Clone, Debug)]
pub struct SvmClassifier {
    machines: Vec<BinarySvm>,
    shared: SharedSupport,
}

impl SvmClassifier {
    /// Trains one binary machine per class. The kernel matrix is
    /// label-independent, so it is computed once and shared by every
    /// machine (bit-identical to fitting each machine standalone).
    ///
    /// # Errors
    ///
    /// Propagates [`BinarySvm::fit`] errors; [`Error::EmptyDataset`] when
    /// the dataset has no instances.
    pub fn fit(data: &ClassDataset, config: SvmConfig) -> Result<SvmClassifier> {
        if data.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let x = &data.features;
        if x.cols() == 0 {
            return Err(Error::EmptyDataset);
        }
        if !(config.c > 0.0) {
            return Err(Error::InvalidConfig("C must be positive"));
        }
        let n = x.rows();
        let xq = quantize_matrix(config.precision, x);
        let xq: &Matrix = xq.as_ref().unwrap_or(x);
        let kmat = kernel_matrix(config.kernel, config.precision, xq);
        let classes = data.classes();
        let mut machines = Vec::with_capacity(classes);
        let mut sv_indices = Vec::with_capacity(classes);
        for c in 0..classes {
            let y: Vec<f32> =
                data.labels.iter().map(|&l| if l == c { 1.0 } else { -1.0 }).collect();
            let (machine, sv_idx) = BinarySvm::fit_prepared(xq, &y, config, &kmat)?;
            machines.push(machine);
            sv_indices.push(sv_idx);
        }
        // Build the union of support rows and each machine's map into it.
        let mut union_pos = vec![u32::MAX; n];
        let mut union_idx = Vec::new();
        for idx in sv_indices.iter().flatten() {
            if union_pos[*idx] == u32::MAX {
                union_pos[*idx] = u32::try_from(union_idx.len()).expect("row count fits u32");
                union_idx.push(*idx);
            }
        }
        let rows = xq.select_rows(&union_idx);
        let maps = sv_indices
            .into_iter()
            .map(|idx| idx.into_iter().map(|i| union_pos[i]).collect())
            .collect();
        Ok(SvmClassifier { machines, shared: SharedSupport { rows, maps } })
    }

    /// Predicts the class with the largest decision value.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict_one(&self, x: &[f32]) -> Result<usize> {
        let shared = &self.shared;
        if x.len() != shared.rows.cols() {
            return Err(Error::DimensionMismatch { expected: shared.rows.cols(), actual: x.len() });
        }
        let precision = self.machines.first().map_or(Precision::F32, |m| m.precision);
        let kernel = self.machines.first().map_or(Kernel::Linear, |m| m.kernel);
        // Quantize the query once, evaluate the kernel once per union
        // row, and let every machine sum its own subset — each decision
        // value is bit-identical to [`BinarySvm::decision`].
        let quantized;
        let xq: &[f32] = if precision == Precision::F32 {
            x
        } else {
            let mut q = x.to_vec();
            pudiannao_softfp::batch::quantize_f32_slice(&mut q);
            quantized = q;
            &quantized
        };
        let kvals: Vec<f32> = shared
            .rows
            .iter_rows()
            .map(|row| kernel.eval_prequantized(precision, xq, row))
            .collect();
        let mut best = (0usize, f32::NEG_INFINITY);
        for (c, (m, map)) in self.machines.iter().zip(&shared.maps).enumerate() {
            let d = m.decision_from_kernel_values(map, &kvals);
            if d > best.1 {
                best = (c, d);
            }
        }
        Ok(best.0)
    }

    /// Predicts every row of `queries`.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<usize>> {
        (0..queries.rows()).map(|i| self.predict_one(queries.row(i))).collect()
    }

    /// Total support vectors across the per-class machines.
    #[must_use]
    pub fn support_vectors(&self) -> usize {
        self.machines.iter().map(BinarySvm::support_vectors).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use pudiannao_datasets::{synth, train_test_split};

    #[test]
    fn linear_kernel_separates_linear_data() {
        let data = synth::linearly_separable(200, 8, 1.0, 21);
        let split = train_test_split(&data, 0.3, 1);
        let cfg = SvmConfig { kernel: Kernel::Linear, ..Default::default() };
        let model = SvmClassifier::fit(&split.train, cfg).unwrap();
        let acc = accuracy(&model.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn rbf_kernel_separates_blobs() {
        let data = synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 300,
            features: 8,
            classes: 3,
            spread: 0.08,
            seed: 5,
        });
        let split = train_test_split(&data, 0.3, 2);
        let cfg = SvmConfig { kernel: Kernel::Rbf { gamma: 2.0 }, ..Default::default() };
        let model = SvmClassifier::fit(&split.train, cfg).unwrap();
        let acc = accuracy(&model.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn kernels_evaluate_sanely() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let p = Precision::F32;
        assert_eq!(Kernel::Linear.eval(p, &a, &b), 0.0);
        assert_eq!(Kernel::Linear.eval(p, &a, &a), 1.0);
        assert!((Kernel::Rbf { gamma: 1.0 }.eval(p, &a, &a) - 1.0).abs() < 1e-6);
        assert!(Kernel::Rbf { gamma: 1.0 }.eval(p, &a, &b) < 1.0);
        assert_eq!(Kernel::Poly { degree: 2, coef: 1.0 }.eval(p, &a, &b), 1.0);
        let s = Kernel::Sigmoid { scale: 1.0, offset: 0.0 }.eval(p, &a, &a);
        assert!((s - 1.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn decision_sign_matches_binary_labels() {
        let data = synth::linearly_separable(150, 4, 1.5, 8);
        let y: Vec<f32> = data.labels.iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();
        let cfg = SvmConfig { kernel: Kernel::Linear, ..Default::default() };
        let m = BinarySvm::fit(&data.features, &y, cfg).unwrap();
        let correct = (0..data.len())
            .filter(|&i| (m.decision(data.instance(i)).unwrap() > 0.0) == (y[i] > 0.0))
            .count();
        assert!(correct >= 140, "{correct}/150");
        assert!(m.support_vectors() < data.len(), "not every point should be a SV");
    }

    #[test]
    fn prequantized_eval_matches_eval_bitwise() {
        let kernels = [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.7 },
            Kernel::Poly { degree: 3, coef: 0.5 },
            Kernel::Sigmoid { scale: 0.3, offset: -0.1 },
        ];
        let a: Vec<f32> = (0..97).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.03).collect();
        let b: Vec<f32> = (0..97).map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.07).collect();
        for precision in [Precision::F32, Precision::F16All, Precision::Mixed] {
            let qa: Vec<f32> = a.iter().map(|&v| precision.quantize(v)).collect();
            let qb: Vec<f32> = b.iter().map(|&v| precision.quantize(v)).collect();
            for kernel in kernels {
                let reference = kernel.eval(precision, &a, &b);
                let fast = kernel.eval_prequantized(precision, &qa, &qb);
                assert_eq!(reference.to_bits(), fast.to_bits(), "{kernel:?} {precision:?}");
            }
        }
    }

    #[test]
    fn mixed_precision_tracks_f32() {
        let data = synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 200,
            features: 8,
            classes: 2,
            spread: 0.1,
            seed: 13,
        });
        let split = train_test_split(&data, 0.3, 3);
        let acc_of = |precision| {
            let cfg =
                SvmConfig { kernel: Kernel::Rbf { gamma: 2.0 }, precision, ..Default::default() };
            let m = SvmClassifier::fit(&split.train, cfg).unwrap();
            accuracy(&m.predict(&split.test.features).unwrap(), &split.test.labels)
        };
        let a32 = acc_of(Precision::F32);
        let amx = acc_of(Precision::Mixed);
        assert!(amx > a32 - 0.05, "f32 {a32} vs mixed {amx}");
    }

    #[test]
    fn validation_errors() {
        let data = synth::linearly_separable(20, 4, 1.0, 1);
        let y: Vec<f32> = vec![0.5; 20];
        assert!(matches!(
            BinarySvm::fit(&data.features, &y, SvmConfig::default()),
            Err(Error::InvalidConfig(_))
        ));
        let y2: Vec<f32> = vec![1.0; 19];
        assert!(matches!(
            BinarySvm::fit(&data.features, &y2, SvmConfig::default()),
            Err(Error::DimensionMismatch { .. })
        ));
        let yok: Vec<f32> = vec![1.0; 20];
        assert!(matches!(
            BinarySvm::fit(&data.features, &yok, SvmConfig { c: 0.0, ..Default::default() }),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn decision_rejects_wrong_width() {
        let data = synth::linearly_separable(30, 4, 1.0, 2);
        let y: Vec<f32> = data.labels.iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();
        let m = BinarySvm::fit(
            &data.features,
            &y,
            SvmConfig { kernel: Kernel::Linear, ..Default::default() },
        )
        .unwrap();
        assert!(matches!(
            m.decision(&[1.0]),
            Err(Error::DimensionMismatch { expected: 4, actual: 1 })
        ));
    }
}
