//! Classification trees (Section 2.7): ID3, C4.5 and CART metrics.
//!
//! "Different CTs may use different learning metrics. For example, CART
//! uses Gini impurity, ID3 uses information gain, and C4.5 uses
//! information gain ratio. However, the most time-consuming operations of
//! all CTs are counting." The paper evaluates ID3 on UCI Covertype, and
//! computes the logarithms that information gain needs on the ALU via a
//! 10-term Taylor expansion — [`LogMode`] reproduces both choices.

use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Matrix};
use pudiannao_softfp::taylor_log2;

/// Split-quality metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SplitMetric {
    /// Information gain (ID3) — the paper's benchmarked variant.
    #[default]
    InfoGain,
    /// Information gain ratio (C4.5).
    GainRatio,
    /// Gini impurity decrease (CART).
    Gini,
}

/// How logarithms are evaluated during training.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LogMode {
    /// Library `log2` (reference).
    #[default]
    Exact,
    /// The accelerator ALU's Taylor-series approximation with the given
    /// number of terms (the paper finds 10 sufficient).
    Taylor(u32),
}

impl LogMode {
    fn log2(self, x: f64) -> f64 {
        match self {
            LogMode::Exact => x.log2(),
            LogMode::Taylor(terms) => f64::from(taylor_log2(x as f32, terms)),
        }
    }
}

/// Configuration for [`DecisionTree::fit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TreeConfig {
    /// Split metric.
    pub metric: SplitMetric,
    /// Log evaluation mode (entropy-based metrics only).
    pub log_mode: LogMode,
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Minimum instances required to attempt a split.
    pub min_samples_split: usize,
    /// Candidate thresholds evaluated per feature (quantile cuts).
    pub candidate_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            metric: SplitMetric::InfoGain,
            log_mode: LogMode::Exact,
            max_depth: 12,
            min_samples_split: 2,
            candidate_thresholds: 16,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Index of the `<= threshold` child in the node arena.
        left: usize,
        /// Index of the `> threshold` child.
        right: usize,
    },
}

/// A trained classification tree with threshold splits, stored as a flat
/// node arena (the layout the accelerator's DMA walks at prediction time).
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::tree::{DecisionTree, TreeConfig};
///
/// let data = synth::tree_teacher(800, 6, 4, 3, 5);
/// let model = DecisionTree::fit(&data, TreeConfig::default())?;
/// let pred = model.predict(&data.features)?;
/// let acc = pudiannao_mlkit::metrics::accuracy(&pred, &data.labels);
/// assert!(acc > 0.9);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    features: usize,
    classes: usize,
}

struct Builder<'a> {
    data: &'a ClassDataset,
    config: TreeConfig,
    classes: usize,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    fn impurity(&self, counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        match self.config.metric {
            SplitMetric::InfoGain | SplitMetric::GainRatio => {
                // Entropy.
                -counts
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| {
                        let p = c as f64 / t;
                        p * self.config.log_mode.log2(p)
                    })
                    .sum::<f64>()
            }
            SplitMetric::Gini => 1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>(),
        }
    }

    fn class_counts(&self, idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &i in idx {
            counts[self.data.labels[i]] += 1;
        }
        counts
    }

    fn majority(counts: &[usize]) -> usize {
        counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(k, _)| k).unwrap_or(0)
    }

    /// Finds the best (feature, threshold) over quantile candidate cuts;
    /// returns the score improvement and the split, if any is positive.
    fn best_split(&self, idx: &[usize]) -> Option<(usize, f32, f64)> {
        let parent_counts = self.class_counts(idx);
        let parent_impurity = self.impurity(&parent_counts, idx.len());
        let d = self.data.features.cols();
        let mut best: Option<(usize, f32, f64)> = None;
        let mut values: Vec<f32> = Vec::with_capacity(idx.len());
        for f in 0..d {
            values.clear();
            values.extend(idx.iter().map(|&i| self.data.instance(i)[f]));
            values.sort_by(f32::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Quantile candidate thresholds (midpoints between distinct
            // neighbouring values at quantile positions).
            let cands = self.config.candidate_thresholds.max(1).min(values.len() - 1);
            for c in 0..cands {
                let pos = (c + 1) * (values.len() - 1) / (cands + 1);
                let pos = pos.min(values.len() - 2);
                let threshold = (values[pos] + values[pos + 1]) / 2.0;
                // Count the two sides.
                let mut left = vec![0usize; self.classes];
                let mut right = vec![0usize; self.classes];
                let mut n_left = 0usize;
                for &i in idx {
                    if self.data.instance(i)[f] <= threshold {
                        left[self.data.labels[i]] += 1;
                        n_left += 1;
                    } else {
                        right[self.data.labels[i]] += 1;
                    }
                }
                let n_right = idx.len() - n_left;
                if n_left == 0 || n_right == 0 {
                    continue;
                }
                let w_left = n_left as f64 / idx.len() as f64;
                let w_right = 1.0 - w_left;
                let child = w_left * self.impurity(&left, n_left)
                    + w_right * self.impurity(&right, n_right);
                let mut gain = parent_impurity - child;
                if self.config.metric == SplitMetric::GainRatio {
                    let split_info = -(w_left * self.config.log_mode.log2(w_left)
                        + w_right * self.config.log_mode.log2(w_right));
                    if split_info > 1e-12 {
                        gain /= split_info;
                    }
                }
                if gain > best.map_or(1e-12, |b| b.2) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }

    fn build(&mut self, idx: &[usize], depth: u32) -> usize {
        let counts = self.class_counts(idx);
        let majority = Self::majority(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold, _)) = self.best_split(idx) else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| self.data.instance(i)[feature] <= threshold);
        // Reserve this node's slot before recursing so children get later
        // indices (prediction walks strictly forward).
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority });
        let left = self.build(&li, depth + 1);
        let right = self.build(&ri, depth + 1);
        self.nodes[slot] = Node::Split { feature, threshold, left, right };
        slot
    }
}

impl DecisionTree {
    /// Trains a tree on the dataset.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`]
    /// for a zero depth or zero candidate thresholds.
    pub fn fit(data: &ClassDataset, config: TreeConfig) -> Result<DecisionTree> {
        if data.is_empty() || data.features.cols() == 0 {
            return Err(Error::EmptyDataset);
        }
        if config.max_depth == 0 {
            return Err(Error::InvalidConfig("max_depth must be > 0"));
        }
        if config.candidate_thresholds == 0 {
            return Err(Error::InvalidConfig("candidate_thresholds must be > 0"));
        }
        let classes = data.classes();
        let mut builder = Builder { data, config, classes, nodes: Vec::new() };
        let idx: Vec<usize> = (0..data.len()).collect();
        builder.build(&idx, 0);
        Ok(DecisionTree { nodes: builder.nodes, features: data.features.cols(), classes })
    }

    /// Number of nodes (internal + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        fn walk(nodes: &[Node], i: usize) -> u32 {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Number of classes the tree can emit.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Predicts one instance by walking root to leaf.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict_one(&self, x: &[f32]) -> Result<usize> {
        if x.len() != self.features {
            return Err(Error::DimensionMismatch { expected: self.features, actual: x.len() });
        }
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { class } => return Ok(class),
                Node::Split { feature, threshold, left, right } => {
                    i = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Predicts every row of `queries`.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<usize>> {
        (0..queries.rows()).map(|i| self.predict_one(queries.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use pudiannao_datasets::{synth, train_test_split};

    fn teacher_data() -> ClassDataset {
        synth::tree_teacher(3000, 8, 5, 4, 77)
    }

    #[test]
    fn id3_learns_tree_teacher() {
        let split = train_test_split(&teacher_data(), 0.25, 1);
        let model = DecisionTree::fit(&split.train, TreeConfig::default()).unwrap();
        let acc = accuracy(&model.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(model.depth() <= 12);
        assert_eq!(
            model.leaf_count() + model.leaf_count() - 1,
            model.node_count(),
            "binary tree: nodes = 2 * leaves - 1"
        );
    }

    #[test]
    fn all_three_metrics_learn() {
        let split = train_test_split(&teacher_data(), 0.25, 2);
        for metric in [SplitMetric::InfoGain, SplitMetric::GainRatio, SplitMetric::Gini] {
            let model =
                DecisionTree::fit(&split.train, TreeConfig { metric, ..Default::default() })
                    .unwrap();
            let acc = accuracy(&model.predict(&split.test.features).unwrap(), &split.test.labels);
            assert!(acc > 0.8, "{metric:?}: accuracy {acc}");
        }
    }

    #[test]
    fn taylor_log_matches_exact_log_accuracy() {
        // The paper's claim: 10 Taylor terms remove the approximation's
        // accuracy loss for ID3.
        let split = train_test_split(&teacher_data(), 0.25, 3);
        let exact = DecisionTree::fit(&split.train, TreeConfig::default()).unwrap();
        let taylor = DecisionTree::fit(
            &split.train,
            TreeConfig { log_mode: LogMode::Taylor(10), ..Default::default() },
        )
        .unwrap();
        let acc_exact = accuracy(&exact.predict(&split.test.features).unwrap(), &split.test.labels);
        let acc_taylor =
            accuracy(&taylor.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!((acc_exact - acc_taylor).abs() < 0.02, "exact {acc_exact} vs taylor {acc_taylor}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = teacher_data();
        let model =
            DecisionTree::fit(&data, TreeConfig { max_depth: 3, ..Default::default() }).unwrap();
        assert!(model.depth() <= 3);
        assert!(model.node_count() <= 15);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let data = ClassDataset::new(
            pudiannao_datasets::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            vec![1, 1],
        );
        let model = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(model.node_count(), 1);
        assert_eq!(model.predict_one(&[9.0, 9.0]).unwrap(), 1);
    }

    #[test]
    fn validation_errors() {
        let data = teacher_data();
        assert!(
            DecisionTree::fit(&data, TreeConfig { max_depth: 0, ..Default::default() }).is_err()
        );
        assert!(DecisionTree::fit(
            &data,
            TreeConfig { candidate_thresholds: 0, ..Default::default() }
        )
        .is_err());
        let model = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
        assert!(matches!(
            model.predict_one(&[0.0; 3]),
            Err(Error::DimensionMismatch { expected: 8, actual: 3 })
        ));
    }

    #[test]
    fn deeper_trees_fit_better_on_train() {
        let data = teacher_data();
        let acc_at = |depth| {
            let m = DecisionTree::fit(&data, TreeConfig { max_depth: depth, ..Default::default() })
                .unwrap();
            accuracy(&m.predict(&data.features).unwrap(), &data.labels)
        };
        assert!(acc_at(8) >= acc_at(2));
    }
}
