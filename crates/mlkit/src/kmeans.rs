//! k-Means clustering (Section 2.2) — Lloyd's algorithm.
//!
//! "k-Means starts with k random cluster centroids, and iteratively
//! performs two steps": assign each instance to the nearest centroid
//! (distance calculations — 89.83% of runtime on the paper's CPU), then
//! recompute centroids as cluster means.

use crate::precision::Precision;
use crate::{Error, Result};
use pudiannao_datasets::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centroid initialisation strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KMeansInit {
    /// k distinct instances chosen uniformly (the paper's "k random
    /// cluster centroids").
    #[default]
    Random,
    /// k-means++ seeding (distance-proportional), an optional refinement.
    PlusPlus,
}

/// Configuration for [`KMeans::fit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (paper: k = 10 on MNIST).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when total centroid movement (squared) drops below this.
    pub tol: f32,
    /// RNG seed for initialisation.
    pub seed: u64,
    /// Arithmetic mode for distance calculations (Table 1).
    pub precision: Precision,
    /// Initialisation strategy.
    pub init: KMeansInit,
}

impl Default for KMeansConfig {
    fn default() -> KMeansConfig {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-6,
            seed: 0,
            precision: Precision::F32,
            init: KMeansInit::Random,
        }
    }
}

/// A fitted k-Means model.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::kmeans::{KMeans, KMeansConfig};
///
/// let cfg = synth::BlobsConfig { instances: 300, features: 8, classes: 3, spread: 0.05, seed: 2 };
/// let data = synth::gaussian_blobs(&cfg);
/// let model = KMeans::fit(&data.features, KMeansConfig { k: 3, ..Default::default() })?;
/// assert_eq!(model.assignments().len(), 300);
/// assert!(model.iterations() >= 1);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct KMeans {
    centroids: Matrix,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
    precision: Precision,
}

impl KMeans {
    /// Runs Lloyd's algorithm on the rows of `data`.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`] if
    /// `k` is zero or exceeds the instance count.
    pub fn fit(data: &Matrix, config: KMeansConfig) -> Result<KMeans> {
        let n = data.rows();
        let d = data.cols();
        if n == 0 || d == 0 {
            return Err(Error::EmptyDataset);
        }
        if config.k == 0 {
            return Err(Error::InvalidConfig("k must be > 0"));
        }
        if config.k > n {
            return Err(Error::InvalidConfig("k exceeds the number of instances"));
        }
        if config.max_iters == 0 {
            return Err(Error::InvalidConfig("max_iters must be > 0"));
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = match config.init {
            KMeansInit::Random => init_random(data, config.k, &mut rng),
            KMeansInit::PlusPlus => init_plus_plus(data, config.k, config.precision, &mut rng),
        };

        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for _ in 0..config.max_iters {
            iterations += 1;
            // Assignment step.
            for (i, a) in assignments.iter_mut().enumerate() {
                *a = nearest_centroid(&centroids, data.row(i), config.precision).0;
            }
            // Update step.
            let mut sums = Matrix::zeros(config.k, d);
            let mut counts = vec![0usize; config.k];
            for (i, &a) in assignments.iter().enumerate() {
                counts[a] += 1;
                let row = sums.row_mut(a);
                for (s, &v) in row.iter_mut().zip(data.row(i)) {
                    *s += v;
                }
            }
            let mut movement = 0.0f32;
            for c in 0..config.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster on a random instance.
                    let pick = rng.gen_range(0..n);
                    centroids.row_mut(c).copy_from_slice(data.row(pick));
                    movement = f32::INFINITY;
                    continue;
                }
                let inv = 1.0 / counts[c] as f32;
                let old = centroids.row(c).to_vec();
                let target = centroids.row_mut(c);
                for (j, t) in target.iter_mut().enumerate() {
                    *t = sums[(c, j)] * inv;
                }
                movement += config.precision.squared_distance(&old, centroids.row(c));
            }
            if movement <= config.tol {
                break;
            }
        }

        // Final assignment + inertia under the final centroids.
        let mut inertia = 0.0f64;
        for (i, a) in assignments.iter_mut().enumerate() {
            let (best, dist) = nearest_centroid(&centroids, data.row(i), config.precision);
            *a = best;
            inertia += f64::from(dist);
        }

        Ok(KMeans { centroids, assignments, inertia, iterations, precision: config.precision })
    }

    /// Final centroids, one row per cluster.
    #[must_use]
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Cluster index per training instance.
    #[must_use]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances to assigned centroids.
    #[must_use]
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations executed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns a new instance to its nearest centroid.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn assign(&self, x: &[f32]) -> Result<usize> {
        if x.len() != self.centroids.cols() {
            return Err(Error::DimensionMismatch {
                expected: self.centroids.cols(),
                actual: x.len(),
            });
        }
        Ok(nearest_centroid(&self.centroids, x, self.precision).0)
    }
}

fn nearest_centroid(centroids: &Matrix, x: &[f32], precision: Precision) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, row) in centroids.iter_rows().enumerate() {
        let d = precision.squared_distance(x, row);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn init_random(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    // Sample k distinct rows (Floyd's algorithm would be fancier; k is
    // small, so rejection sampling on indices suffices).
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let i = rng.gen_range(0..data.rows());
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    data.select_rows(&picked)
}

fn init_plus_plus(data: &Matrix, k: usize, precision: Precision, rng: &mut StdRng) -> Matrix {
    let n = data.rows();
    let mut picked = vec![rng.gen_range(0..n)];
    let mut dists: Vec<f32> =
        (0..n).map(|i| precision.squared_distance(data.row(i), data.row(picked[0]))).collect();
    while picked.len() < k {
        let total: f64 = dists.iter().map(|&d| f64::from(d)).sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= f64::from(d);
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        picked.push(next);
        for (i, slot) in dists.iter_mut().enumerate() {
            let d = precision.squared_distance(data.row(i), data.row(next));
            if d < *slot {
                *slot = d;
            }
        }
    }
    data.select_rows(&picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cluster_purity;
    use pudiannao_datasets::synth;

    fn blobs(k: usize, spread: f32) -> pudiannao_datasets::ClassDataset {
        synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 100 * k,
            features: 8,
            classes: k,
            spread,
            seed: 17,
        })
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let data = blobs(4, 0.03);
        let model = KMeans::fit(
            &data.features,
            KMeansConfig { k: 4, seed: 1, init: KMeansInit::PlusPlus, ..Default::default() },
        )
        .unwrap();
        let purity = cluster_purity(model.assignments(), &data.labels);
        assert!(purity > 0.95, "purity {purity}");
        assert_eq!(model.centroids().rows(), 4);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs(4, 0.1);
        let fit = |k| {
            KMeans::fit(
                &data.features,
                KMeansConfig { k, seed: 3, init: KMeansInit::PlusPlus, ..Default::default() },
            )
            .unwrap()
            .inertia()
        };
        assert!(fit(4) < fit(2));
        assert!(fit(2) < fit(1));
    }

    #[test]
    fn converges_and_reports_iterations() {
        let data = blobs(3, 0.05);
        let model = KMeans::fit(
            &data.features,
            KMeansConfig { k: 3, max_iters: 100, seed: 5, ..Default::default() },
        )
        .unwrap();
        assert!(model.iterations() < 100, "should converge early: {}", model.iterations());
    }

    #[test]
    fn assign_matches_training_assignments() {
        let data = blobs(3, 0.05);
        let model =
            KMeans::fit(&data.features, KMeansConfig { k: 3, seed: 2, ..Default::default() })
                .unwrap();
        for i in (0..data.len()).step_by(37) {
            assert_eq!(model.assign(data.instance(i)).unwrap(), model.assignments()[i]);
        }
    }

    #[test]
    fn mixed_precision_clusters_equally_well() {
        let data = blobs(4, 0.05);
        let purity = |precision| {
            let m = KMeans::fit(
                &data.features,
                KMeansConfig {
                    k: 4,
                    seed: 9,
                    precision,
                    init: KMeansInit::PlusPlus,
                    ..Default::default()
                },
            )
            .unwrap();
            cluster_purity(m.assignments(), &data.labels)
        };
        let p32 = purity(Precision::F32);
        let pmx = purity(Precision::Mixed);
        assert!(pmx > p32 - 0.05, "f32 {p32} vs mixed {pmx}");
    }

    #[test]
    fn config_validation() {
        let data = blobs(2, 0.1);
        assert!(matches!(
            KMeans::fit(&data.features, KMeansConfig { k: 0, ..Default::default() }),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            KMeans::fit(&data.features, KMeansConfig { k: 10_000, ..Default::default() }),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            KMeans::fit(&Matrix::zeros(0, 4), KMeansConfig::default()),
            Err(Error::EmptyDataset)
        ));
    }

    #[test]
    fn assign_rejects_wrong_width() {
        let data = blobs(2, 0.1);
        let model =
            KMeans::fit(&data.features, KMeansConfig { k: 2, ..Default::default() }).unwrap();
        assert!(matches!(
            model.assign(&[0.0; 3]),
            Err(Error::DimensionMismatch { expected: 8, actual: 3 })
        ));
    }
}
