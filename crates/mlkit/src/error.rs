//! Crate error type.

use core::fmt;

/// Errors from training or prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A dataset with zero instances (or zero features) was supplied where
    /// data is required.
    EmptyDataset,
    /// Feature dimensionality differed between fit and predict, or between
    /// two inputs that must agree.
    DimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A hyper-parameter was out of its valid range.
    InvalidConfig(&'static str),
    /// The model has not been trained yet.
    NotFitted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataset => f.write_str("dataset has no instances or no features"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::NotFitted => f.write_str("model has not been fitted"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::EmptyDataset.to_string(), "dataset has no instances or no features");
        assert_eq!(
            Error::DimensionMismatch { expected: 3, actual: 5 }.to_string(),
            "dimension mismatch: expected 3, got 5"
        );
        assert_eq!(
            Error::InvalidConfig("k must be > 0").to_string(),
            "invalid configuration: k must be > 0"
        );
        assert_eq!(Error::NotFitted.to_string(), "model has not been fitted");
    }
}
