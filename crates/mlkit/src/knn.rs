//! k-nearest neighbours (Section 2.1).
//!
//! The technique has a single phase: for each testing instance, compute
//! distances to all reference instances (84.44% of runtime on the paper's
//! CPU measurements), select the k nearest (the hardware k-sorter's job),
//! and vote (classification) or average (regression).

use crate::precision::Precision;
use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Matrix, RegDataset};

/// Configuration for the k-NN predictors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnnConfig {
    /// Neighbours consulted per prediction (paper: k = 20 on MNIST).
    pub k: usize,
    /// Arithmetic mode for distance calculations (Table 1).
    pub precision: Precision,
    /// Optional `(testing, reference)` tile sizes; prediction results are
    /// identical, only the evaluation order changes (Figure 3).
    pub tile: Option<(usize, usize)>,
}

impl Default for KnnConfig {
    fn default() -> KnnConfig {
        KnnConfig { k: 5, precision: Precision::F32, tile: None }
    }
}

impl KnnConfig {
    fn validate(&self, n_refs: usize) -> Result<()> {
        if self.k == 0 {
            return Err(Error::InvalidConfig("k must be > 0"));
        }
        if self.k > n_refs {
            return Err(Error::InvalidConfig("k exceeds the number of reference instances"));
        }
        if matches!(self.tile, Some((0, _)) | Some((_, 0))) {
            return Err(Error::InvalidConfig("tile sizes must be non-zero"));
        }
        Ok(())
    }
}

/// Keeps the `k` smallest `(distance, payload)` pairs seen so far — the
/// software twin of the Misc stage's k-sorter module.
#[derive(Clone, Debug)]
pub struct KSmallest<T> {
    k: usize,
    /// Sorted ascending by distance.
    entries: Vec<(f32, T)>,
}

impl<T: Copy> KSmallest<T> {
    /// Creates a selector for the `k` smallest values.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> KSmallest<T> {
        assert!(k > 0, "k must be > 0");
        KSmallest { k, entries: Vec::with_capacity(k + 1) }
    }

    /// Offers one candidate.
    pub fn push(&mut self, distance: f32, payload: T) {
        if self.entries.len() == self.k
            && distance >= self.entries.last().expect("non-empty at capacity").0
        {
            return;
        }
        let pos = self.entries.partition_point(|&(d, _)| d <= distance);
        self.entries.insert(pos, (distance, payload));
        self.entries.truncate(self.k);
    }

    /// The selected entries, ascending by distance.
    #[must_use]
    pub fn into_sorted(self) -> Vec<(f32, T)> {
        self.entries
    }
}

fn pairwise_order(
    n_test: usize,
    n_refs: usize,
    tile: Option<(usize, usize)>,
) -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(n_test * n_refs);
    match tile {
        None => {
            for i in 0..n_test {
                for j in 0..n_refs {
                    order.push((i, j));
                }
            }
        }
        Some((ti, tj)) => {
            let mut i0 = 0;
            while i0 < n_test {
                let i1 = (i0 + ti).min(n_test);
                let mut j0 = 0;
                while j0 < n_refs {
                    let j1 = (j0 + tj).min(n_refs);
                    for i in i0..i1 {
                        for j in j0..j1 {
                            order.push((i, j));
                        }
                    }
                    j0 = j1;
                }
                i0 = i1;
            }
        }
    }
    order
}

/// Shared prediction core: runs the (optionally tiled) distance sweep and
/// hands each testing instance's k nearest payloads to `decide`.
fn predict_with<L: Copy, O>(
    refs: &Matrix,
    labels: &[L],
    config: &KnnConfig,
    queries: &Matrix,
    decide: impl Fn(&[(f32, L)]) -> O,
) -> Result<Vec<O>> {
    if queries.cols() != refs.cols() {
        return Err(Error::DimensionMismatch { expected: refs.cols(), actual: queries.cols() });
    }
    let mut selectors: Vec<KSmallest<L>> =
        (0..queries.rows()).map(|_| KSmallest::new(config.k)).collect();
    for (i, j) in pairwise_order(queries.rows(), refs.rows(), config.tile) {
        let d = config.precision.squared_distance(queries.row(i), refs.row(j));
        selectors[i].push(d, labels[j]);
    }
    Ok(selectors.into_iter().map(|s| decide(&s.into_sorted())).collect())
}

/// k-NN classifier over a stored reference set.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::knn::{KnnClassifier, KnnConfig};
///
/// let cfg = synth::BlobsConfig { instances: 200, features: 8, classes: 4, spread: 0.05, seed: 3 };
/// let data = synth::gaussian_blobs(&cfg);
/// let model = KnnClassifier::fit(&data, KnnConfig { k: 3, ..KnnConfig::default() })?;
/// let predictions = model.predict(&data.features)?;
/// assert_eq!(predictions, data.labels); // tiny spread: perfectly separable
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct KnnClassifier {
    refs: Matrix,
    labels: Vec<usize>,
    config: KnnConfig,
}

impl KnnClassifier {
    /// Stores the reference set.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`]
    /// for a bad `k` or tile.
    pub fn fit(data: &ClassDataset, config: KnnConfig) -> Result<KnnClassifier> {
        if data.is_empty() || data.features.cols() == 0 {
            return Err(Error::EmptyDataset);
        }
        config.validate(data.len())?;
        Ok(KnnClassifier { refs: data.features.clone(), labels: data.labels.clone(), config })
    }

    /// Predicts labels for each row of `queries` by majority vote among
    /// the k nearest references (ties break toward the nearest).
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<usize>> {
        predict_with(&self.refs, &self.labels, &self.config, queries, |nearest| {
            // Majority vote; ties resolved by closeness (first occurrence
            // in ascending-distance order wins).
            let mut counts: Vec<(usize, usize, usize)> = Vec::new(); // (label, count, first_rank)
            for (rank, &(_, label)) in nearest.iter().enumerate() {
                if let Some(e) = counts.iter_mut().find(|e| e.0 == label) {
                    e.1 += 1;
                } else {
                    counts.push((label, 1, rank));
                }
            }
            counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
                .map(|e| e.0)
                .expect("k >= 1 guarantees at least one neighbour")
        })
    }

    /// Predicts a single instance.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict_one(&self, query: &[f32]) -> Result<usize> {
        let m = Matrix::from_rows(&[query]);
        Ok(self.predict(&m)?.remove(0))
    }

    /// The configured k.
    #[must_use]
    pub fn k(&self) -> usize {
        self.config.k
    }
}

/// k-NN regressor: predicts the mean label of the k nearest references.
#[derive(Clone, Debug)]
pub struct KnnRegressor {
    refs: Matrix,
    labels: Vec<f32>,
    config: KnnConfig,
}

impl KnnRegressor {
    /// Stores the reference set.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`]
    /// for a bad `k` or tile.
    pub fn fit(data: &RegDataset, config: KnnConfig) -> Result<KnnRegressor> {
        if data.is_empty() || data.features.cols() == 0 {
            return Err(Error::EmptyDataset);
        }
        config.validate(data.len())?;
        Ok(KnnRegressor { refs: data.features.clone(), labels: data.labels.clone(), config })
    }

    /// Predicts the mean neighbour label for each query row.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<f32>> {
        predict_with(&self.refs, &self.labels, &self.config, queries, |nearest| {
            nearest.iter().map(|&(_, y)| y).sum::<f32>() / nearest.len() as f32
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use pudiannao_datasets::{synth, train_test_split};

    fn blobs() -> ClassDataset {
        synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 400,
            features: 16,
            classes: 4,
            spread: 0.08,
            seed: 11,
        })
    }

    #[test]
    fn classifies_held_out_blobs() {
        let split = train_test_split(&blobs(), 0.25, 5);
        let model =
            KnnClassifier::fit(&split.train, KnnConfig { k: 5, ..Default::default() }).unwrap();
        let pred = model.predict(&split.test.features).unwrap();
        let acc = accuracy(&pred, &split.test.labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn tiled_and_untiled_predictions_match() {
        let split = train_test_split(&blobs(), 0.25, 5);
        let base =
            KnnClassifier::fit(&split.train, KnnConfig { k: 7, ..Default::default() }).unwrap();
        let tiled = KnnClassifier::fit(
            &split.train,
            KnnConfig { k: 7, tile: Some((13, 29)), ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            base.predict(&split.test.features).unwrap(),
            tiled.predict(&split.test.features).unwrap()
        );
    }

    #[test]
    fn mixed_precision_matches_f32_on_normalised_data() {
        let split = train_test_split(&blobs(), 0.25, 5);
        let f32m =
            KnnClassifier::fit(&split.train, KnnConfig { k: 5, ..Default::default() }).unwrap();
        let mixed = KnnClassifier::fit(
            &split.train,
            KnnConfig { k: 5, precision: Precision::Mixed, ..Default::default() },
        )
        .unwrap();
        let a = f32m.predict(&split.test.features).unwrap();
        let b = mixed.predict(&split.test.features).unwrap();
        let agree = accuracy(&a, &b);
        assert!(agree > 0.98, "agreement {agree}");
    }

    #[test]
    fn regressor_averages_neighbours() {
        let (data, _) = synth::linear_teacher(200, 4, 0.01, 3);
        let model = KnnRegressor::fit(&data, KnnConfig { k: 3, ..Default::default() }).unwrap();
        // Predicting the training points themselves: nearest neighbour is
        // the point itself, so predictions correlate strongly with labels.
        let pred = model.predict(&data.features).unwrap();
        let mse = crate::metrics::mse(&pred, &data.labels);
        assert!(mse < 0.1, "mse {mse}");
    }

    #[test]
    fn k_one_memorises_training_data() {
        let data = blobs();
        let model = KnnClassifier::fit(&data, KnnConfig { k: 1, ..Default::default() }).unwrap();
        let pred = model.predict(&data.features).unwrap();
        assert_eq!(pred, data.labels);
    }

    #[test]
    fn config_validation() {
        let data = blobs();
        assert_eq!(
            KnnClassifier::fit(&data, KnnConfig { k: 0, ..Default::default() }).unwrap_err(),
            Error::InvalidConfig("k must be > 0")
        );
        assert_eq!(
            KnnClassifier::fit(&data, KnnConfig { k: 100_000, ..Default::default() }).unwrap_err(),
            Error::InvalidConfig("k exceeds the number of reference instances")
        );
        assert_eq!(
            KnnClassifier::fit(&data, KnnConfig { k: 1, tile: Some((0, 4)), ..Default::default() })
                .unwrap_err(),
            Error::InvalidConfig("tile sizes must be non-zero")
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let data = blobs();
        let model = KnnClassifier::fit(&data, KnnConfig::default()).unwrap();
        let err = model.predict(&Matrix::zeros(1, 3)).unwrap_err();
        assert_eq!(err, Error::DimensionMismatch { expected: 16, actual: 3 });
    }

    #[test]
    fn ksmallest_keeps_k_smallest_sorted() {
        let mut sel = KSmallest::new(3);
        for (d, v) in [(5.0, 'a'), (1.0, 'b'), (4.0, 'c'), (0.5, 'd'), (9.0, 'e')] {
            sel.push(d, v);
        }
        let out = sel.into_sorted();
        assert_eq!(out.iter().map(|&(_, v)| v).collect::<Vec<_>>(), vec!['d', 'b', 'c']);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn ksmallest_handles_duplicates() {
        let mut sel = KSmallest::new(2);
        sel.push(1.0, 1);
        sel.push(1.0, 2);
        sel.push(1.0, 3);
        let out = sel.into_sorted();
        assert_eq!(out.len(), 2);
        // First-seen entries win ties.
        assert_eq!(out[0].1, 1);
        assert_eq!(out[1].1, 2);
    }
}
