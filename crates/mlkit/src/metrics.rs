//! Evaluation metrics shared by the experiments.

/// Fraction of positions where the two label sequences agree.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use pudiannao_mlkit::metrics::accuracy;
/// assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
/// ```
#[must_use]
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "label sequences must align");
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// Mean squared error between predictions and targets.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mse(predicted: &[f32], actual: &[f32]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "sequences must align");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(actual).map(|(&p, &a)| (f64::from(p) - f64::from(a)).powi(2)).sum::<f64>()
        / predicted.len() as f64
}

/// Confusion matrix: `matrix[actual][predicted]` counts.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn confusion(predicted: &[usize], actual: &[usize], classes: usize) -> Vec<Vec<u64>> {
    assert_eq!(predicted.len(), actual.len(), "label sequences must align");
    let mut m = vec![vec![0u64; classes]; classes];
    for (&p, &a) in predicted.iter().zip(actual) {
        if p < classes && a < classes {
            m[a][p] += 1;
        }
    }
    m
}

/// Normalised mutual-information-free clustering quality: purity. For
/// each cluster, the dominant true label's share, averaged over instances.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn cluster_purity(assignments: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(assignments.len(), truth.len(), "sequences must align");
    if assignments.is_empty() {
        return 0.0;
    }
    let clusters = assignments.iter().copied().max().unwrap_or(0) + 1;
    let classes = truth.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![vec![0u64; classes]; clusters];
    for (&c, &t) in assignments.iter().zip(truth) {
        counts[c][t] += 1;
    }
    let dominant: u64 = counts.iter().map(|row| row.iter().copied().max().unwrap_or(0)).sum();
    dominant as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[0, 1], &[1, 0]), 0.0);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m[0][0], 2); // actual 0 predicted 0
        assert_eq!(m[0][1], 1); // actual 0 predicted 1
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn purity_perfect_and_mixed() {
        assert_eq!(cluster_purity(&[0, 0, 1, 1], &[2, 2, 3, 3]), 1.0);
        assert_eq!(cluster_purity(&[0, 0, 0, 0], &[0, 0, 1, 1]), 0.5);
        assert_eq!(cluster_purity(&[], &[]), 0.0);
    }
}
