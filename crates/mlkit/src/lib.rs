//! Golden implementations of the seven ML techniques PuDianNao supports.
//!
//! "We present an accelerator accommodating seven representative ML
//! techniques, i.e., k-means, k-NN, naive bayes, support vector machine,
//! linear regression, classification tree, and deep neural network."
//! (Section 1). This crate implements every one of them in software, with
//! both training and prediction phases where applicable:
//!
//! | module | technique | phases |
//! |---|---|---|
//! | [`knn`] | k-nearest neighbours | prediction (classify / regress) |
//! | [`kmeans`] | k-means (Lloyd) | clustering |
//! | [`linreg`] | linear regression | GD training + prediction |
//! | [`svm`] | support vector machine (SMO) | training + prediction |
//! | [`nb`] | discrete naive Bayes | training + prediction |
//! | [`tree`] | classification tree (ID3 / C4.5 / CART) | training + prediction |
//! | [`dnn`] | multi-layer perceptron + RBM | feedforward, BP training, CD-1 pre-training |
//!
//! These serve three purposes in the reproduction: (1) functional oracles
//! that the accelerator simulator's outputs are checked against, (2) the
//! substrate for the Table-1 precision study — the five techniques the
//! paper evaluates there accept a [`Precision`] mode that routes their
//! inner loops through bit-accurate binary16 arithmetic — and (3) the
//! workload definitions the performance models characterise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// ^ `!(x > 0.0)` is used deliberately in validation: unlike `x <= 0.0`
// it also rejects NaN, which is exactly what config checks want.

pub mod dnn;
mod error;
pub mod kmeans;
pub mod knn;
pub mod linreg;
pub mod metrics;
pub mod model_selection;
pub mod nb;
pub mod precision;
pub mod svm;
pub mod tree;

pub use error::Error;
pub use precision::Precision;

/// Crate-wide result type.
pub type Result<T> = core::result::Result<T, Error>;
