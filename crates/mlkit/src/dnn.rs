//! Deep neural network (Section 2.3): MLP feedforward, back-propagation
//! global training, and RBM contrastive-divergence pre-training.
//!
//! "A DNN has three computation modes, feedforward computation ...,
//! pre-training which locally tune the synapses between each pair of
//! adjacent layers, and global training which globally tune synapses with
//! the Back Propagation (BP) algorithm." Pre-training "can be done by
//! training Restricted Boltzmann Machines". All three modes are dominated
//! by the same dot-product structure (footnote 1), which is why one MLU
//! datapath serves them all.

use crate::precision::Precision;
use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Neuron activation function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Logistic sigmoid (the paper's canonical example).
    #[default]
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* value.
    #[must_use]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// One fully connected layer: `y = f(W x + b)`, with `W` stored row-major
/// as `outputs x inputs` (each output neuron's weights contiguous — the
/// tiled access order of Figure 7).
#[derive(Clone, Debug)]
pub struct Layer {
    weights: Matrix,
    bias: Vec<f32>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Layer {
        // Xavier-style init keeps sigmoid nets trainable.
        let scale = (6.0 / (inputs + outputs) as f32).sqrt();
        let mut w = Matrix::zeros(outputs, inputs);
        for r in 0..outputs {
            for v in w.row_mut(r) {
                *v = rng.gen_range(-scale..scale);
            }
        }
        Layer { weights: w, bias: vec![0.0; outputs] }
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.bias.len()
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix, `outputs x inputs` row-major.
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector, one entry per output neuron.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

/// Configuration for [`Mlp`] construction and training.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths (the paper's MNIST DNN uses four 4096 layers).
    pub hidden: Vec<usize>,
    /// Activation for every layer.
    pub activation: Activation,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Training epochs (full passes).
    pub epochs: usize,
    /// Seed for weight init and shuffling.
    pub seed: u64,
    /// Arithmetic mode for the dot products and weight storage (Table 1).
    pub precision: Precision,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden: vec![16],
            activation: Activation::Sigmoid,
            learning_rate: 0.5,
            epochs: 50,
            seed: 0,
            precision: Precision::F32,
        }
    }
}

/// A multi-layer perceptron classifier.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::dnn::{Mlp, MlpConfig};
///
/// let data = synth::gaussian_blobs(&synth::BlobsConfig {
///     instances: 200, features: 8, classes: 3, spread: 0.08, seed: 3,
/// });
/// let mut mlp = Mlp::new(8, 3, &MlpConfig::default())?;
/// mlp.train(&data)?;
/// let acc = pudiannao_mlkit::metrics::accuracy(&mlp.predict(&data.features)?, &data.labels);
/// assert!(acc > 0.9);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Layer>,
    config: MlpConfig,
}

impl Mlp {
    /// Builds a randomly initialised network `inputs -> hidden... -> outputs`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if any width is zero or the learning rate
    /// is not positive.
    pub fn new(inputs: usize, outputs: usize, config: &MlpConfig) -> Result<Mlp> {
        if inputs == 0 || outputs == 0 || config.hidden.contains(&0) {
            return Err(Error::InvalidConfig("layer widths must be non-zero"));
        }
        if !(config.learning_rate > 0.0) {
            return Err(Error::InvalidConfig("learning rate must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut widths = vec![inputs];
        widths.extend_from_slice(&config.hidden);
        widths.push(outputs);
        let layers = widths.windows(2).map(|w| Layer::new(w[0], w[1], &mut rng)).collect();
        Ok(Mlp { layers, config: config.clone() })
    }

    /// Number of layers (hidden + output).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layers in order (for exporting weights to an accelerator).
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer widths including the input: `[in, h1, ..., out]`.
    #[must_use]
    pub fn widths(&self) -> Vec<usize> {
        let mut w = vec![self.layers[0].inputs()];
        w.extend(self.layers.iter().map(Layer::outputs));
        w
    }

    /// Feedforward computation: returns the activations of every layer
    /// (index 0 is the input itself) — the paper's `Y = X (x) W` pass.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the input width differs.
    pub fn feedforward(&self, x: &[f32]) -> Result<Vec<Vec<f32>>> {
        if x.len() != self.layers[0].inputs() {
            return Err(Error::DimensionMismatch {
                expected: self.layers[0].inputs(),
                actual: x.len(),
            });
        }
        let p = self.config.precision;
        let mut acts = vec![x.to_vec()];
        for layer in &self.layers {
            let prev = acts.last().expect("at least the input activation");
            let mut out = Vec::with_capacity(layer.outputs());
            for o in 0..layer.outputs() {
                let z = p.dot(layer.weights.row(o), prev) + layer.bias[o];
                out.push(self.config.activation.apply(z));
            }
            acts.push(out);
        }
        Ok(acts)
    }

    /// Network output for one input.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the input width differs.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>> {
        Ok(self.feedforward(x)?.pop().expect("feedforward returns >= 1 activation"))
    }

    /// One backpropagation update on a single (input, one-hot target)
    /// pair; returns the squared error before the update.
    fn backprop_one(&mut self, x: &[f32], target: &[f32]) -> Result<f32> {
        let acts = self.feedforward(x)?;
        let p = self.config.precision;
        let lr = self.config.learning_rate;
        let out = acts.last().expect("non-empty activations");
        let err: f32 = out.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum();

        // Output-layer delta.
        let mut delta: Vec<f32> = out
            .iter()
            .zip(target)
            .map(|(&o, &t)| (o - t) * self.config.activation.derivative_from_output(o))
            .collect();

        for l in (0..self.layers.len()).rev() {
            let input = &acts[l];
            // Delta for the next (shallower) layer, before weights change.
            let prev_delta: Option<Vec<f32>> = if l > 0 {
                let layer = &self.layers[l];
                let mut pd = vec![0.0f32; layer.inputs()];
                for (o, &d) in delta.iter().enumerate() {
                    let wrow = layer.weights.row(o);
                    for (j, v) in pd.iter_mut().enumerate() {
                        *v += d * wrow[j];
                    }
                }
                let below = &acts[l];
                for (v, &a) in pd.iter_mut().zip(below) {
                    *v *= self.config.activation.derivative_from_output(a);
                }
                Some(pd)
            } else {
                None
            };
            // Weight update: w -= lr * delta (x) input, quantised per mode.
            let layer = &mut self.layers[l];
            for (o, &d) in delta.iter().enumerate() {
                let row = layer.weights.row_mut(o);
                p.axpy(-lr * d, input, row);
                layer.bias[o] = p.quantize(layer.bias[o] - lr * d);
            }
            if let Some(pd) = prev_delta {
                delta = pd;
            }
        }
        Ok(err)
    }

    /// Global training: per-sample SGD with one-hot squared-error targets
    /// (the BP algorithm of Section 2.3).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data, [`Error::DimensionMismatch`]
    /// if widths differ, [`Error::InvalidConfig`] if a label exceeds the
    /// output width.
    pub fn train(&mut self, data: &ClassDataset) -> Result<f64> {
        if data.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let outputs = self.layers.last().expect("at least one layer").outputs();
        if data.classes() > outputs {
            return Err(Error::InvalidConfig("label exceeds output layer width"));
        }
        let mut last_loss = 0.0f64;
        for _ in 0..self.config.epochs {
            last_loss = 0.0;
            for i in 0..data.len() {
                let mut target = vec![0.0f32; outputs];
                target[data.labels[i]] = 1.0;
                last_loss += f64::from(self.backprop_one(data.instance(i), &target)?);
            }
            last_loss /= data.len() as f64;
        }
        Ok(last_loss)
    }

    /// Predicts the arg-max output class for each query row.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the input width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<usize>> {
        (0..queries.rows())
            .map(|i| {
                let out = self.forward(queries.row(i))?;
                Ok(out
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite activations"))
                    .map(|(c, _)| c)
                    .unwrap_or(0))
            })
            .collect()
    }

    /// Layer-wise RBM pre-training (contrastive divergence) on unlabeled
    /// inputs: each hidden layer's weights are initialised from an RBM
    /// trained on the previous layer's activations, then serve "as the
    /// initial synapses of global training".
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the input width differs.
    pub fn pretrain(&mut self, inputs: &Matrix, epochs: usize, lr: f32) -> Result<()> {
        if inputs.cols() != self.layers[0].inputs() {
            return Err(Error::DimensionMismatch {
                expected: self.layers[0].inputs(),
                actual: inputs.cols(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5242_4D00);
        let mut current = inputs.clone();
        // Pre-train every layer except the output layer.
        let trainable = self.layers.len().saturating_sub(1);
        for l in 0..trainable {
            let (vis, hid) = (self.layers[l].inputs(), self.layers[l].outputs());
            let mut rbm = Rbm::new(vis, hid, self.config.seed ^ l as u64);
            for _ in 0..epochs {
                rbm.cd1_epoch(&current, lr, &mut rng);
            }
            // Transfer RBM weights into the layer.
            self.layers[l].weights = rbm.weights.clone();
            self.layers[l].bias = rbm.hidden_bias.clone();
            // Propagate activations for the next layer's RBM.
            let mut next = Matrix::zeros(current.rows(), hid);
            for r in 0..current.rows() {
                let h = rbm.hidden_probabilities(current.row(r));
                next.row_mut(r).copy_from_slice(&h);
            }
            current = next;
        }
        Ok(())
    }
}

/// A Restricted Boltzmann Machine with binary units, trained by CD-1.
#[derive(Clone, Debug)]
pub struct Rbm {
    weights: Matrix,
    visible_bias: Vec<f32>,
    hidden_bias: Vec<f32>,
}

impl Rbm {
    /// Randomly initialised RBM with `visible` and `hidden` units.
    #[must_use]
    pub fn new(visible: usize, hidden: usize, seed: u64) -> Rbm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Matrix::zeros(hidden, visible);
        for r in 0..hidden {
            for v in w.row_mut(r) {
                *v = rng.gen_range(-0.1..0.1);
            }
        }
        Rbm { weights: w, visible_bias: vec![0.0; visible], hidden_bias: vec![0.0; hidden] }
    }

    /// `p(h_j = 1 | v)` for every hidden unit.
    #[must_use]
    pub fn hidden_probabilities(&self, v: &[f32]) -> Vec<f32> {
        (0..self.hidden_bias.len())
            .map(|j| {
                let z: f32 = self.weights.row(j).iter().zip(v).map(|(w, x)| w * x).sum();
                sigmoid(z + self.hidden_bias[j])
            })
            .collect()
    }

    /// `p(v_i = 1 | h)` for every visible unit.
    #[must_use]
    pub fn visible_probabilities(&self, h: &[f32]) -> Vec<f32> {
        (0..self.visible_bias.len())
            .map(|i| {
                let z: f32 = (0..self.hidden_bias.len()).map(|j| self.weights[(j, i)] * h[j]).sum();
                sigmoid(z + self.visible_bias[i])
            })
            .collect()
    }

    /// One CD-1 epoch over the rows of `data` (Gibbs sampling with one
    /// reconstruction step — the pre-training mode of Section 2.3).
    pub fn cd1_epoch(&mut self, data: &Matrix, lr: f32, rng: &mut StdRng) {
        for r in 0..data.rows() {
            let v0 = data.row(r);
            let h0 = self.hidden_probabilities(v0);
            let h0_sample: Vec<f32> =
                h0.iter().map(|&p| f32::from(rng.gen_bool(f64::from(p.clamp(0.0, 1.0))))).collect();
            let v1 = self.visible_probabilities(&h0_sample);
            let h1 = self.hidden_probabilities(&v1);
            for j in 0..self.hidden_bias.len() {
                let row = self.weights.row_mut(j);
                for i in 0..row.len() {
                    row[i] += lr * (h0[j] * v0[i] - h1[j] * v1[i]);
                }
                self.hidden_bias[j] += lr * (h0[j] - h1[j]);
            }
            for i in 0..self.visible_bias.len() {
                self.visible_bias[i] += lr * (v0[i] - v1[i]);
            }
        }
    }

    /// Mean squared reconstruction error over the rows of `data`.
    #[must_use]
    pub fn reconstruction_error(&self, data: &Matrix) -> f64 {
        if data.rows() == 0 {
            return 0.0;
        }
        let mut total = 0.0f64;
        for r in 0..data.rows() {
            let v0 = data.row(r);
            let h = self.hidden_probabilities(v0);
            let v1 = self.visible_probabilities(&h);
            total += v0.iter().zip(&v1).map(|(&a, &b)| f64::from((a - b) * (a - b))).sum::<f64>();
        }
        total / (data.rows() * data.cols()) as f64
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use pudiannao_datasets::{synth, train_test_split, ClassDataset};

    fn blobs() -> ClassDataset {
        synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 300,
            features: 8,
            classes: 3,
            spread: 0.08,
            seed: 3,
        })
    }

    #[test]
    fn learns_blob_classification() {
        let split = train_test_split(&blobs(), 0.25, 1);
        let mut mlp = Mlp::new(8, 3, &MlpConfig::default()).unwrap();
        let loss = mlp.train(&split.train).unwrap();
        let acc = accuracy(&mlp.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.9, "accuracy {acc}, loss {loss}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        // The classic non-linear benchmark: impossible without a hidden
        // layer, learnable with one.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = vec![0usize, 1, 1, 0];
        let data = ClassDataset::new(x, labels.clone());
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 4000,
            learning_rate: 1.0,
            seed: 2,
            ..Default::default()
        };
        let mut mlp = Mlp::new(2, 2, &cfg).unwrap();
        mlp.train(&data).unwrap();
        assert_eq!(mlp.predict(&data.features).unwrap(), labels);
    }

    #[test]
    fn feedforward_shapes() {
        let mlp = Mlp::new(4, 2, &MlpConfig { hidden: vec![7, 5], ..Default::default() }).unwrap();
        assert_eq!(mlp.layer_count(), 3);
        assert_eq!(mlp.widths(), vec![4, 7, 5, 2]);
        let acts = mlp.feedforward(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(acts.len(), 4);
        assert_eq!(acts[1].len(), 7);
        assert_eq!(acts[3].len(), 2);
        // Sigmoid keeps everything in (0, 1).
        assert!(acts[3].iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn training_reduces_loss() {
        let data = blobs();
        let cfg = MlpConfig { epochs: 1, ..Default::default() };
        let mut mlp = Mlp::new(8, 3, &cfg).unwrap();
        let first = mlp.train(&data).unwrap();
        let mut later = first;
        for _ in 0..20 {
            later = mlp.train(&data).unwrap();
        }
        assert!(later < first, "loss should fall: {first} -> {later}");
    }

    #[test]
    fn pretraining_reduces_rbm_reconstruction_error() {
        let data = blobs();
        let mut rbm = Rbm::new(8, 16, 1);
        let before = rbm.reconstruction_error(&data.features);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..15 {
            rbm.cd1_epoch(&data.features, 0.1, &mut rng);
        }
        let after = rbm.reconstruction_error(&data.features);
        assert!(after < before, "reconstruction error {before} -> {after}");
    }

    #[test]
    fn pretrain_then_train_still_learns() {
        let split = train_test_split(&blobs(), 0.25, 4);
        let cfg = MlpConfig { hidden: vec![16, 12], epochs: 30, ..Default::default() };
        let mut mlp = Mlp::new(8, 3, &cfg).unwrap();
        mlp.pretrain(&split.train.features, 5, 0.1).unwrap();
        mlp.train(&split.train).unwrap();
        let acc = accuracy(&mlp.predict(&split.test.features).unwrap(), &split.test.labels);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn mixed_precision_feedforward_tracks_f32() {
        let data = blobs();
        let mk = |precision| {
            let cfg = MlpConfig { seed: 8, precision, ..Default::default() };
            Mlp::new(8, 3, &cfg).unwrap()
        };
        let a = mk(Precision::F32);
        let b = mk(Precision::Mixed);
        // Same seed -> same weights; outputs must agree to ~f16 epsilon.
        let oa = a.forward(data.instance(0)).unwrap();
        let ob = b.forward(data.instance(0)).unwrap();
        for (x, y) in oa.iter().zip(&ob) {
            assert!((x - y).abs() < 5e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn activation_functions() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        // derivative_from_output(sigmoid(0)) = 0.25.
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-6);
        assert!((Activation::Tanh.derivative_from_output(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validation_errors() {
        assert!(Mlp::new(0, 3, &MlpConfig::default()).is_err());
        assert!(Mlp::new(4, 0, &MlpConfig::default()).is_err());
        assert!(Mlp::new(4, 2, &MlpConfig { hidden: vec![0], ..Default::default() }).is_err());
        assert!(Mlp::new(4, 2, &MlpConfig { learning_rate: 0.0, ..Default::default() }).is_err());
        let mlp = Mlp::new(4, 2, &MlpConfig::default()).unwrap();
        assert!(matches!(
            mlp.forward(&[1.0]),
            Err(Error::DimensionMismatch { expected: 4, actual: 1 })
        ));
    }
}
