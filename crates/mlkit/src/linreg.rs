//! Linear regression (Section 2.4).
//!
//! Training minimises mean squared error by gradient descent — "gradient
//! descent starts with an initial values of theta ... and iteratively
//! updates theta along the negative gradient direction", with the
//! dominant cost being the `theta . x(i)` dot products. Prediction is the
//! vector-matrix product `Y = theta X` (Eq. 2).

use crate::precision::Precision;
use crate::{Error, Result};
use pudiannao_datasets::{Matrix, RegDataset};

/// Configuration for [`LinearRegression::fit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinRegConfig {
    /// Gradient-descent step size.
    pub learning_rate: f32,
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// L2 regularisation strength (0 disables).
    pub l2: f32,
    /// Arithmetic mode for the dot products and updates (Table 1).
    pub precision: Precision,
}

impl Default for LinRegConfig {
    fn default() -> LinRegConfig {
        LinRegConfig { learning_rate: 0.1, epochs: 200, l2: 0.0, precision: Precision::F32 }
    }
}

/// A linear model `y = theta_0 + sum_i theta_i * x_i`.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::linreg::{LinRegConfig, LinearRegression};
///
/// let (data, _teacher) = synth::linear_teacher(200, 4, 0.0, 1);
/// let model = LinearRegression::fit(&data, LinRegConfig::default())?;
/// let pred = model.predict(&data.features)?;
/// let mse = pudiannao_mlkit::metrics::mse(&pred, &data.labels);
/// assert!(mse < 1e-3);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearRegression {
    /// Coefficients with the intercept first (`theta_0`).
    theta: Vec<f32>,
    precision: Precision,
}

impl LinearRegression {
    /// Trains by full-batch gradient descent.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] for empty data; [`Error::InvalidConfig`]
    /// for non-positive learning rate or zero epochs.
    pub fn fit(data: &RegDataset, config: LinRegConfig) -> Result<LinearRegression> {
        let n = data.len();
        let d = data.features.cols();
        if n == 0 || d == 0 {
            return Err(Error::EmptyDataset);
        }
        if !(config.learning_rate > 0.0) {
            return Err(Error::InvalidConfig("learning rate must be positive"));
        }
        if config.epochs == 0 {
            return Err(Error::InvalidConfig("epochs must be > 0"));
        }
        let p = config.precision;
        let mut theta = vec![0.0f32; d + 1];
        let inv_n = 1.0 / n as f32;
        let mut grad = vec![0.0f32; d + 1];
        for _ in 0..config.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            for i in 0..n {
                let x = data.features.row(i);
                let pred = p.dot(&theta[1..], x) + theta[0];
                let err = pred - data.labels[i];
                grad[0] += err;
                // grad[j+1] += err * x[j], in the chosen datapath.
                for (g, &xj) in grad[1..].iter_mut().zip(x) {
                    *g += p.mul(err, xj);
                }
            }
            if config.l2 > 0.0 {
                for (g, &t) in grad[1..].iter_mut().zip(&theta[1..]) {
                    *g += config.l2 * t;
                }
            }
            let step = -config.learning_rate * inv_n;
            let grad_snapshot = grad.clone();
            p.axpy(step, &grad_snapshot, &mut theta);
        }
        Ok(LinearRegression { theta, precision: p })
    }

    /// Builds a model directly from known coefficients (intercept first)
    /// — used by the accelerator integration tests to compare against a
    /// fixed model.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDataset`] if no coefficients are supplied.
    pub fn from_coefficients(theta: Vec<f32>, precision: Precision) -> Result<LinearRegression> {
        if theta.is_empty() {
            return Err(Error::EmptyDataset);
        }
        Ok(LinearRegression { theta, precision })
    }

    /// Coefficients, intercept first.
    #[must_use]
    pub fn coefficients(&self) -> &[f32] {
        &self.theta
    }

    /// Predicts one instance.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict_one(&self, x: &[f32]) -> Result<f32> {
        if x.len() + 1 != self.theta.len() {
            return Err(Error::DimensionMismatch {
                expected: self.theta.len() - 1,
                actual: x.len(),
            });
        }
        Ok(self.precision.dot(&self.theta[1..], x) + self.theta[0])
    }

    /// Predicts every row of `queries` (Eq. 2).
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] if the feature width differs.
    pub fn predict(&self, queries: &Matrix) -> Result<Vec<f32>> {
        (0..queries.rows()).map(|i| self.predict_one(queries.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;
    use pudiannao_datasets::synth;

    #[test]
    fn recovers_noiseless_teacher() {
        let (data, teacher) = synth::linear_teacher(300, 6, 0.0, 4);
        let model = LinearRegression::fit(
            &data,
            LinRegConfig { epochs: 2000, learning_rate: 0.3, ..Default::default() },
        )
        .unwrap();
        for (learned, truth) in model.coefficients().iter().zip(&teacher) {
            assert!((learned - truth).abs() < 0.02, "{learned} vs {truth}");
        }
    }

    #[test]
    fn noisy_fit_generalises() {
        let (data, _) = synth::linear_teacher(500, 8, 0.05, 9);
        let model = LinearRegression::fit(&data, LinRegConfig::default()).unwrap();
        let pred = model.predict(&data.features).unwrap();
        let err = mse(&pred, &data.labels);
        // Residual should be near the noise floor (0.05^2 = 0.0025).
        assert!(err < 0.02, "mse {err}");
    }

    #[test]
    fn l2_shrinks_coefficients() {
        let (data, _) = synth::linear_teacher(200, 4, 0.0, 2);
        let free = LinearRegression::fit(&data, LinRegConfig::default()).unwrap();
        let ridge =
            LinearRegression::fit(&data, LinRegConfig { l2: 50.0, ..Default::default() }).unwrap();
        let norm = |m: &LinearRegression| m.coefficients()[1..].iter().map(|c| c * c).sum::<f32>();
        assert!(norm(&ridge) < norm(&free));
    }

    #[test]
    fn all16_training_is_visibly_worse() {
        // The Table-1 effect: binary16 gradients/parameters stall.
        let (data, _) = synth::linear_teacher(300, 16, 0.0, 7);
        let cfg = LinRegConfig { epochs: 500, learning_rate: 0.1, ..Default::default() };
        let f32m = LinearRegression::fit(&data, cfg).unwrap();
        let f16m =
            LinearRegression::fit(&data, LinRegConfig { precision: Precision::F16All, ..cfg })
                .unwrap();
        let mixed =
            LinearRegression::fit(&data, LinRegConfig { precision: Precision::Mixed, ..cfg })
                .unwrap();
        let err = |m: &LinearRegression| mse(&m.predict(&data.features).unwrap(), &data.labels);
        let (e32, e16, emx) = (err(&f32m), err(&f16m), err(&mixed));
        assert!(e16 > emx * 1.5, "all-16 {e16} should be worse than mixed {emx}");
        assert!(emx < e32 * 10.0 + 1e-4, "mixed {emx} close to f32 {e32}");
    }

    #[test]
    fn from_coefficients_predicts() {
        let m = LinearRegression::from_coefficients(vec![1.0, 2.0, -1.0], Precision::F32).unwrap();
        assert_eq!(m.predict_one(&[3.0, 4.0]).unwrap(), 1.0 + 6.0 - 4.0);
        assert!(LinearRegression::from_coefficients(vec![], Precision::F32).is_err());
    }

    #[test]
    fn config_and_dimension_errors() {
        let (data, _) = synth::linear_teacher(10, 2, 0.0, 1);
        assert!(LinearRegression::fit(
            &data,
            LinRegConfig { learning_rate: 0.0, ..Default::default() }
        )
        .is_err());
        assert!(
            LinearRegression::fit(&data, LinRegConfig { epochs: 0, ..Default::default() }).is_err()
        );
        let model = LinearRegression::fit(&data, LinRegConfig::default()).unwrap();
        assert!(matches!(
            model.predict_one(&[1.0]),
            Err(Error::DimensionMismatch { expected: 2, actual: 1 })
        ));
    }
}
