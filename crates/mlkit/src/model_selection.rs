//! Model selection utilities: k-fold cross-validation.
//!
//! The no-free-lunch theorem the paper leans on ("any learning technique
//! cannot perform universally better than another") is exactly why a
//! polyvalent accelerator's user needs to *compare* techniques on their
//! data; cross-validation is the standard instrument for that comparison.

use crate::{Error, Result};
use pudiannao_datasets::{ClassDataset, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic k-fold splitter over instance indices.
///
/// # Examples
///
/// ```
/// use pudiannao_mlkit::model_selection::KFold;
///
/// let folds = KFold::new(3, 42).split(10)?;
/// assert_eq!(folds.len(), 3);
/// let total: usize = folds.iter().map(|f| f.test.len()).sum();
/// assert_eq!(total, 10); // every instance is tested exactly once
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KFold {
    folds: usize,
    seed: u64,
}

/// One fold: disjoint train/test index sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fold {
    /// Training indices.
    pub train: Vec<usize>,
    /// Held-out indices.
    pub test: Vec<usize>,
}

impl KFold {
    /// A splitter producing `folds` folds after a seeded shuffle.
    #[must_use]
    pub fn new(folds: usize, seed: u64) -> KFold {
        KFold { folds, seed }
    }

    /// Splits `n` instances into folds.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if fewer than 2 folds are requested or
    /// there are fewer instances than folds.
    pub fn split(&self, n: usize) -> Result<Vec<Fold>> {
        if self.folds < 2 {
            return Err(Error::InvalidConfig("need at least 2 folds"));
        }
        if n < self.folds {
            return Err(Error::InvalidConfig("need at least one instance per fold"));
        }
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(self.seed));
        let mut folds = Vec::with_capacity(self.folds);
        for f in 0..self.folds {
            let lo = f * n / self.folds;
            let hi = (f + 1) * n / self.folds;
            let test: Vec<usize> = indices[lo..hi].to_vec();
            let train: Vec<usize> = indices[..lo].iter().chain(&indices[hi..]).copied().collect();
            folds.push(Fold { train, test });
        }
        Ok(folds)
    }
}

/// Cross-validated accuracy of an arbitrary fit-and-predict closure.
///
/// `fit_predict(train, test_features)` must return one label per test
/// row; the mean per-fold accuracy is returned.
///
/// # Errors
///
/// Propagates splitter and closure errors.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::synth;
/// use pudiannao_mlkit::knn::{KnnClassifier, KnnConfig};
/// use pudiannao_mlkit::model_selection::cross_val_accuracy;
///
/// let data = synth::gaussian_blobs(&synth::BlobsConfig {
///     instances: 150, features: 8, classes: 3, spread: 0.08, seed: 4,
/// });
/// let acc = cross_val_accuracy(&data, 5, 1, |train, test| {
///     let model = KnnClassifier::fit(train, KnnConfig { k: 3, ..Default::default() })?;
///     model.predict(test)
/// })?;
/// assert!(acc > 0.9);
/// # Ok::<(), pudiannao_mlkit::Error>(())
/// ```
pub fn cross_val_accuracy<F>(
    data: &ClassDataset,
    folds: usize,
    seed: u64,
    mut fit_predict: F,
) -> Result<f64>
where
    F: FnMut(&ClassDataset, &pudiannao_datasets::Matrix) -> Result<Vec<usize>>,
{
    let splits = KFold::new(folds, seed).split(data.len())?;
    let mut total = 0.0;
    for fold in &splits {
        let train = Dataset::new(
            data.features.select_rows(&fold.train),
            fold.train.iter().map(|&i| data.labels[i]).collect(),
        );
        let test_x = data.features.select_rows(&fold.test);
        let predicted = fit_predict(&train, &test_x)?;
        if predicted.len() != fold.test.len() {
            return Err(Error::DimensionMismatch {
                expected: fold.test.len(),
                actual: predicted.len(),
            });
        }
        let actual: Vec<usize> = fold.test.iter().map(|&i| data.labels[i]).collect();
        total += crate::metrics::accuracy(&predicted, &actual);
    }
    Ok(total / splits.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnClassifier, KnnConfig};
    use crate::nb::{NaiveBayes, NbConfig};
    use crate::tree::{DecisionTree, TreeConfig};
    use pudiannao_datasets::synth;

    #[test]
    fn folds_partition_without_overlap() {
        let folds = KFold::new(4, 9).split(21).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = vec![false; 21];
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 21);
            for &i in &f.test {
                assert!(!seen[i], "instance {i} tested twice");
                seen[i] = true;
                assert!(!f.train.contains(&i));
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn splitter_is_deterministic() {
        assert_eq!(KFold::new(3, 5).split(30).unwrap(), KFold::new(3, 5).split(30).unwrap());
        assert_ne!(KFold::new(3, 5).split(30).unwrap(), KFold::new(3, 6).split(30).unwrap());
    }

    #[test]
    fn validation_errors() {
        assert!(KFold::new(1, 0).split(10).is_err());
        assert!(KFold::new(5, 0).split(3).is_err());
    }

    #[test]
    fn no_free_lunch_comparison_runs() {
        // The paper's motivating workflow: compare techniques on one
        // dataset. On tree-structured data the tree should beat NB.
        let data = synth::tree_teacher(600, 6, 4, 3, 11);
        let tree_acc = cross_val_accuracy(&data, 4, 1, |train, test| {
            DecisionTree::fit(train, TreeConfig::default())?.predict(test)
        })
        .unwrap();
        let knn_acc = cross_val_accuracy(&data, 4, 1, |train, test| {
            KnnClassifier::fit(train, KnnConfig { k: 5, ..Default::default() })?.predict(test)
        })
        .unwrap();
        assert!(tree_acc > 0.8, "tree {tree_acc}");
        assert!(tree_acc > knn_acc, "tree {tree_acc} should beat k-NN {knn_acc} on tree data");

        // And on class-conditional categorical data, NB beats the tree's
        // axis splits less clearly — both should at least be competent.
        let cat = synth::categorical(&synth::CategoricalConfig {
            instances: 800,
            features: 8,
            values: 5,
            classes: 4,
            seed: 3,
        });
        let nb_acc = cross_val_accuracy(&cat, 4, 1, |train, test| {
            NaiveBayes::fit(train, NbConfig { values: 5, ..Default::default() })?.predict(test)
        })
        .unwrap();
        assert!(nb_acc > 0.7, "nb {nb_acc}");
    }

    #[test]
    fn mismatched_prediction_length_is_reported() {
        let data = synth::gaussian_blobs(&synth::BlobsConfig {
            instances: 30,
            features: 4,
            classes: 2,
            spread: 0.1,
            seed: 2,
        });
        let err = cross_val_accuracy(&data, 3, 0, |_, _| Ok(vec![0])).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }
}
