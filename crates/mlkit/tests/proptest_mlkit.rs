//! Property-based tests on the ML-algorithm invariants.

use proptest::prelude::*;
use pudiannao_datasets::{ClassDataset, Dataset, Matrix};
use pudiannao_mlkit::{kmeans, knn, metrics, nb, tree};

/// A random small classification dataset with integer-coded features in
/// `0..values` (suitable for NB) that also works as continuous data for
/// trees and k-NN.
fn categorical_dataset(
    max_rows: usize,
    features: usize,
    values: usize,
    classes: usize,
) -> impl Strategy<Value = ClassDataset> {
    (2..max_rows)
        .prop_flat_map(move |rows| {
            (
                proptest::collection::vec(0..values, rows * features),
                proptest::collection::vec(0..classes, rows),
            )
        })
        .prop_map(move |(feats, labels)| {
            let data: Vec<f32> = feats.into_iter().map(|v| v as f32).collect();
            let rows = labels.len();
            Dataset::new(Matrix::from_vec(data, rows, features), labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NB's product-space and log-space posteriors pick the same class,
    /// except where the two top posteriors are numerically tied (the two
    /// evaluation orders may then round to different argmaxes).
    #[test]
    fn nb_log_and_product_space_agree(data in categorical_dataset(40, 4, 3, 3)) {
        let prod = nb::NaiveBayes::fit(&data, nb::NbConfig { values: 3, ..Default::default() });
        let logm = nb::NaiveBayes::fit(
            &data,
            nb::NbConfig { values: 3, log_space: true, ..Default::default() },
        );
        let (prod, logm) = (prod.unwrap(), logm.unwrap());
        let a = prod.predict(&data.features).unwrap();
        let b = logm.predict(&data.features).unwrap();
        for i in 0..data.len() {
            if a[i] != b[i] {
                let scores = prod.posterior(data.instance(i)).unwrap();
                let rel = (scores[a[i]] - scores[b[i]]).abs()
                    / scores[a[i]].abs().max(1e-300);
                prop_assert!(
                    rel < 1e-5,
                    "instance {}: classes {} vs {} differ beyond a tie ({rel})",
                    i, a[i], b[i]
                );
            }
        }
    }

    /// NB conditional probabilities are a proper distribution per
    /// (feature, class).
    #[test]
    fn nb_conditionals_normalise(data in categorical_dataset(40, 4, 3, 3)) {
        let model =
            nb::NaiveBayes::fit(&data, nb::NbConfig { values: 3, ..Default::default() }).unwrap();
        for f in 0..4 {
            for c in 0..model.classes() {
                let total: f64 = (0..3).map(|v| model.conditional(f, v, c)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for v in 0..3 {
                    let p = model.conditional(f, v, c);
                    prop_assert!(p > 0.0 && p < 1.0);
                }
            }
        }
    }

    /// Decision trees respect their depth bound and only emit seen labels.
    #[test]
    fn tree_respects_depth_and_label_range(
        data in categorical_dataset(60, 4, 5, 4),
        depth in 1u32..6,
    ) {
        let model = tree::DecisionTree::fit(
            &data,
            tree::TreeConfig { max_depth: depth, ..Default::default() },
        )
        .unwrap();
        prop_assert!(model.depth() <= depth);
        let classes = data.classes();
        for p in model.predict(&data.features).unwrap() {
            prop_assert!(p < classes);
        }
        // Binary tree arithmetic: nodes = 2 * leaves - 1.
        prop_assert_eq!(model.node_count(), 2 * model.leaf_count() - 1);
    }

    /// k-NN with k = 1 memorises any training set without duplicate
    /// feature rows.
    #[test]
    fn knn_k1_memorises(data in categorical_dataset(40, 6, 8, 3)) {
        // Deduplicate identical rows (they can carry conflicting labels).
        let mut seen = std::collections::HashSet::new();
        let mut keep = Vec::new();
        for i in 0..data.len() {
            let key: Vec<u32> = data.instance(i).iter().map(|v| v.to_bits()).collect();
            if seen.insert(key) {
                keep.push(i);
            }
        }
        prop_assume!(keep.len() >= 2);
        let dedup = Dataset::new(
            data.features.select_rows(&keep),
            keep.iter().map(|&i| data.labels[i]).collect(),
        );
        let model =
            knn::KnnClassifier::fit(&dedup, knn::KnnConfig { k: 1, ..Default::default() })
                .unwrap();
        prop_assert_eq!(model.predict(&dedup.features).unwrap(), dedup.labels);
    }

    /// k-Means assignments are always valid cluster indices and the
    /// reported inertia is non-negative and consistent with `assign`.
    #[test]
    fn kmeans_invariants(data in categorical_dataset(50, 3, 6, 2), k in 1usize..4) {
        prop_assume!(data.len() >= k);
        let model = kmeans::KMeans::fit(
            &data.features,
            kmeans::KMeansConfig { k, seed: 7, max_iters: 20, ..Default::default() },
        )
        .unwrap();
        prop_assert!(model.inertia() >= 0.0);
        for (i, &a) in model.assignments().iter().enumerate() {
            prop_assert!(a < k);
            prop_assert_eq!(model.assign(data.instance(i)).unwrap(), a);
        }
    }

    /// Metric sanity: accuracy is symmetric in agreement and bounded.
    #[test]
    fn accuracy_bounds_and_symmetry(
        a in proptest::collection::vec(0usize..4, 1..30),
    ) {
        let b: Vec<usize> = a.iter().map(|&x| (x + 1) % 4).collect();
        prop_assert_eq!(metrics::accuracy(&a, &a), 1.0);
        prop_assert_eq!(metrics::accuracy(&a, &b), 0.0);
        let acc = metrics::accuracy(&a, &a.iter().rev().copied().collect::<Vec<_>>());
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
