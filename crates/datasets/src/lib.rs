//! Deterministic synthetic datasets for the PuDianNao reproduction.
//!
//! The paper benchmarks on MNIST and three UCI datasets (Nursery,
//! Covertype, Gas — Table 4). Those files are not available here, so this
//! crate generates synthetic stand-ins with the **same problem sizes** and
//! the statistical structure each experiment depends on:
//!
//! - bandwidth/tiling experiments depend only on shape (instance counts,
//!   feature dimensionality) — any data works;
//! - accuracy experiments (Table 1) depend on *learnability* — the
//!   generators plant real structure (Gaussian class clusters, a linear
//!   teacher model, class-conditional categorical distributions, a
//!   ground-truth decision tree) so each ML technique has signal to find.
//!
//! All generators are seeded and fully deterministic.
//!
//! # Examples
//!
//! ```
//! use pudiannao_datasets::synth;
//!
//! let data = synth::gaussian_blobs(&synth::BlobsConfig {
//!     instances: 300,
//!     features: 16,
//!     classes: 3,
//!     spread: 0.2,
//!     seed: 7,
//! });
//! assert_eq!(data.len(), 300);
//! assert_eq!(data.features.cols(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// ^ `!(x > 0.0)` is used deliberately in validation: unlike `x <= 0.0`
// it also rejects NaN, which is exactly what config checks want.

mod matrix;
pub mod preprocess;
mod split;
pub mod synth;

pub use matrix::Matrix;
pub use split::{train_test_split, Split};

/// A labelled dataset: a dense feature matrix plus one label per row.
///
/// `L` is `usize` for classification and `f32` for regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset<L> {
    /// Row-major feature matrix; one row per instance.
    pub features: Matrix,
    /// One label per row of `features`.
    pub labels: Vec<L>,
}

/// Classification dataset (labels are class indices).
pub type ClassDataset = Dataset<usize>;
/// Regression dataset (labels are real responses).
pub type RegDataset = Dataset<f32>;

impl<L> Dataset<L> {
    /// Builds a dataset, checking that labels match the matrix rows.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    #[must_use]
    pub fn new(features: Matrix, labels: Vec<L>) -> Dataset<L> {
        assert_eq!(labels.len(), features.rows(), "one label required per feature row");
        Dataset { features, labels }
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// One instance's feature slice.
    #[must_use]
    pub fn instance(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }
}

impl Dataset<usize> {
    /// Number of distinct classes (max label + 1); 0 when empty.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let d = Dataset::new(m, vec![0usize, 1]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.instance(1), &[3.0, 4.0]);
        assert_eq!(d.classes(), 2);
    }

    #[test]
    #[should_panic(expected = "one label required per feature row")]
    fn mismatched_labels_panic() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let _ = Dataset::new(m, vec![0usize]);
    }

    #[test]
    fn empty_dataset() {
        let d: ClassDataset = Dataset::new(Matrix::zeros(0, 4), vec![]);
        assert!(d.is_empty());
        assert_eq!(d.classes(), 0);
    }
}
