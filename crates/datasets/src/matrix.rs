//! A minimal dense row-major matrix.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// Kept deliberately small: the ML algorithms in `pudiannao-mlkit` only
/// need row access, element access and iteration. Rows are instances.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 5.0;
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer must be rows * cols long");
        Matrix { data, rows, cols }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { data, rows: rows.len(), cols }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Selects a subset of rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { data, rows: indices.len(), cols: self.cols }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 7.0;
        m.row_mut(1)[0] = 8.0;
        assert_eq!(m.into_vec(), vec![0.0, 7.0, 8.0, 0.0]);
    }

    #[test]
    fn iter_rows_matches() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn select_rows_subsets() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
        assert_eq!(s.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer must be rows * cols long")]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(0, 1)];
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(format!("{:?}", Matrix::zeros(3, 4)), "Matrix(3x4)");
    }
}
