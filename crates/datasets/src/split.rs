//! Train/test splitting.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test partition of a dataset.
#[derive(Clone, Debug)]
pub struct Split<L> {
    /// Training portion.
    pub train: Dataset<L>,
    /// Testing portion.
    pub test: Dataset<L>,
}

/// Splits a dataset into train and test portions after a seeded shuffle.
///
/// `test_fraction` is clamped to `[0, 1]`; at least one instance stays in
/// the training set when the dataset is non-empty.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::{synth, train_test_split};
///
/// let data = synth::linearly_separable(100, 4, 0.5, 1);
/// let split = train_test_split(&data, 0.25, 42);
/// assert_eq!(split.train.len(), 75);
/// assert_eq!(split.test.len(), 25);
/// ```
#[must_use]
pub fn train_test_split<L: Clone>(data: &Dataset<L>, test_fraction: f64, seed: u64) -> Split<L> {
    let n = data.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut n_test = (n as f64 * test_fraction.clamp(0.0, 1.0)).round() as usize;
    if n > 0 && n_test >= n {
        n_test = n - 1;
    }
    let (test_idx, train_idx) = indices.split_at(n_test);
    let take = |idx: &[usize]| {
        Dataset::new(
            data.features.select_rows(idx),
            idx.iter().map(|&i| data.labels[i].clone()).collect(),
        )
    };
    Split { train: take(train_idx), test: take(test_idx) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn split_sizes_and_determinism() {
        let data = synth::linearly_separable(101, 4, 0.5, 1);
        let a = train_test_split(&data, 0.3, 7);
        let b = train_test_split(&data, 0.3, 7);
        assert_eq!(a.train.len() + a.test.len(), 101);
        assert_eq!(a.test.len(), 30);
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.train.features, b.train.features);
    }

    #[test]
    fn extreme_fractions() {
        let data = synth::linearly_separable(10, 4, 0.5, 1);
        let all_train = train_test_split(&data, 0.0, 7);
        assert_eq!(all_train.test.len(), 0);
        // Even at fraction 1.0 one training instance remains.
        let nearly_all_test = train_test_split(&data, 1.0, 7);
        assert_eq!(nearly_all_test.train.len(), 1);
    }

    #[test]
    fn split_partitions_without_duplicates() {
        let data = synth::linear_teacher(50, 3, 0.0, 2).0;
        let s = train_test_split(&data, 0.5, 3);
        // Every original label value count is preserved across the split.
        let mut orig: Vec<f32> = data.labels.clone();
        let mut joined: Vec<f32> = s.train.labels.iter().chain(&s.test.labels).copied().collect();
        orig.sort_by(f32::total_cmp);
        joined.sort_by(f32::total_cmp);
        assert_eq!(orig, joined);
    }
}
