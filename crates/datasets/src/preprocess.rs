//! Feature preprocessing: normalisation and discretisation.
//!
//! Naive Bayes (Section 2.6, discrete version) and ID3 on discrete feature
//! spaces need discretised inputs; gradient-based learners (LR, SVM, DNN)
//! behave better on normalised features — especially with the 16-bit MLU
//! datapath, whose range is only ±65504.

use crate::matrix::Matrix;

/// Per-column affine scaling fitted on training data and applied to any
/// matrix with the same column count.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::{preprocess::MinMaxScaler, Matrix};
///
/// let train = Matrix::from_rows(&[&[0.0, 10.0], &[4.0, 30.0]]);
/// let scaler = MinMaxScaler::fit(&train);
/// let scaled = scaler.transform(&train);
/// assert_eq!(scaled.row(0), &[0.0, 0.0]);
/// assert_eq!(scaled.row(1), &[1.0, 1.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    scales: Vec<f32>,
}

impl MinMaxScaler {
    /// Fits column minima and ranges on `train`. Constant columns get a
    /// scale of 1 so `transform` maps them to 0.
    #[must_use]
    pub fn fit(train: &Matrix) -> MinMaxScaler {
        let cols = train.cols();
        let mut mins = vec![f32::INFINITY; cols];
        let mut maxs = vec![f32::NEG_INFINITY; cols];
        for row in train.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        let scales =
            mins.iter().zip(&maxs).map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 }).collect();
        if train.rows() == 0 {
            mins.iter_mut().for_each(|m| *m = 0.0);
        }
        MinMaxScaler { mins, scales }
    }

    /// Applies the fitted scaling: `(x - min) / range` per column.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted matrix.
    #[must_use]
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mins.len(), "column count mismatch");
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mins[c]) / self.scales[c];
            }
        }
        out
    }
}

/// Equal-width discretisation of continuous features into `bins` integer
/// levels (`0..bins`), fitted per column on training data.
///
/// # Examples
///
/// ```
/// use pudiannao_datasets::{preprocess::Discretizer, Matrix};
///
/// let train = Matrix::from_rows(&[&[0.0], &[1.0]]);
/// let disc = Discretizer::fit(&train, 4);
/// let out = disc.transform(&Matrix::from_rows(&[&[0.1], &[0.6], &[0.99]]));
/// assert_eq!(out.as_slice(), &[0.0, 2.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Discretizer {
    scaler: MinMaxScaler,
    bins: usize,
}

impl Discretizer {
    /// Fits column ranges and the bin count (clamped to at least 2).
    #[must_use]
    pub fn fit(train: &Matrix, bins: usize) -> Discretizer {
        Discretizer { scaler: MinMaxScaler::fit(train), bins: bins.max(2) }
    }

    /// Number of levels produced.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Maps each value to its bin index as `f32` (out-of-range values are
    /// clamped to the boundary bins).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted matrix.
    #[must_use]
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = self.scaler.transform(data);
        let max_bin = (self.bins - 1) as f32;
        for r in 0..out.rows() {
            for v in out.row_mut(r) {
                *v = (*v * self.bins as f32).floor().clamp(0.0, max_bin);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_handles_constant_columns() {
        let train = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 3.0]]);
        let s = MinMaxScaler::fit(&train);
        let out = s.transform(&train);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn minmax_applies_train_statistics_to_test() {
        let train = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let s = MinMaxScaler::fit(&train);
        let test = Matrix::from_rows(&[&[20.0]]);
        assert_eq!(s.transform(&test).as_slice(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn minmax_rejects_wrong_width() {
        let s = MinMaxScaler::fit(&Matrix::zeros(1, 2));
        let _ = s.transform(&Matrix::zeros(1, 3));
    }

    #[test]
    fn discretizer_clamps_out_of_range() {
        let train = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let d = Discretizer::fit(&train, 4);
        assert_eq!(d.bins(), 4);
        let out = d.transform(&Matrix::from_rows(&[&[-5.0], &[5.0], &[1.0]]));
        assert_eq!(out.as_slice(), &[0.0, 3.0, 3.0]);
    }

    #[test]
    fn discretizer_minimum_two_bins() {
        let d = Discretizer::fit(&Matrix::from_rows(&[&[0.0], &[1.0]]), 0);
        assert_eq!(d.bins(), 2);
    }
}
