//! Synthetic dataset generators, including paper-size presets (Table 4).

use crate::matrix::Matrix;
use crate::{ClassDataset, Dataset, RegDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a standard-normal value via Box-Muller (avoids needing
/// `rand_distr`).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f32::consts::TAU * u2).cos()
}

/// Configuration for [`gaussian_blobs`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlobsConfig {
    /// Total instances, distributed round-robin over classes.
    pub instances: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Number of classes (cluster centres).
    pub classes: usize,
    /// Cluster standard deviation; centres live on the unit hypercube, so
    /// `spread` well below 0.5 keeps classes separable.
    pub spread: f32,
    /// RNG seed.
    pub seed: u64,
}

/// Gaussian class clusters — the MNIST stand-in for k-NN, k-Means, SVM and
/// DNN classification experiments.
///
/// Each class gets a random centre in `[0, 1]^d`; instances are the centre
/// plus isotropic Gaussian noise.
///
/// # Panics
///
/// Panics if `classes == 0` or `features == 0`.
#[must_use]
pub fn gaussian_blobs(config: &BlobsConfig) -> ClassDataset {
    assert!(config.classes > 0 && config.features > 0, "degenerate blob config");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let centres: Vec<Vec<f32>> = (0..config.classes)
        .map(|_| (0..config.features).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut x = Matrix::zeros(config.instances, config.features);
    let mut labels = Vec::with_capacity(config.instances);
    for i in 0..config.instances {
        let class = i % config.classes;
        labels.push(class);
        let row = x.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = centres[class][j] + config.spread * normal(&mut rng);
        }
    }
    Dataset::new(x, labels)
}

/// Linearly separable binary data with the given margin — the workload
/// where the paper's introduction notes a linear classifier beats a
/// complex neural network.
///
/// A random unit normal `w` defines the separating hyperplane through the
/// origin; points are sampled and pushed `margin` away from the plane on
/// their side.
#[must_use]
pub fn linearly_separable(
    instances: usize,
    features: usize,
    margin: f32,
    seed: u64,
) -> ClassDataset {
    assert!(features > 0, "features must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w: Vec<f32> = (0..features).map(|_| normal(&mut rng)).collect();
    let norm = w.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    w.iter_mut().for_each(|v| *v /= norm);
    let mut x = Matrix::zeros(instances, features);
    let mut labels = Vec::with_capacity(instances);
    for i in 0..instances {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = normal(&mut rng);
        }
        let proj: f32 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
        let side = if proj >= 0.0 { 1.0 } else { -1.0 };
        // Push away from the plane to create the margin.
        for (v, wi) in row.iter_mut().zip(&w) {
            *v += side * margin * wi;
        }
        labels.push(usize::from(side > 0.0));
    }
    Dataset::new(x, labels)
}

/// Linear-teacher regression data: `y = theta . x + intercept + noise`.
/// Returns the dataset together with the ground-truth coefficients
/// (intercept first), so tests can check recovery.
#[must_use]
pub fn linear_teacher(
    instances: usize,
    features: usize,
    noise: f32,
    seed: u64,
) -> (RegDataset, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let theta: Vec<f32> = (0..=features).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut x = Matrix::zeros(instances, features);
    let mut y = Vec::with_capacity(instances);
    for i in 0..instances {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut t = theta[0];
        for (j, v) in row.iter().enumerate() {
            t += theta[j + 1] * v;
        }
        y.push(t + noise * normal(&mut rng));
    }
    (Dataset::new(x, y), theta)
}

/// Configuration for [`categorical`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoricalConfig {
    /// Instances.
    pub instances: usize,
    /// Discrete features.
    pub features: usize,
    /// Values per feature (encoded as `0.0..values as f32`).
    pub values: usize,
    /// Classes.
    pub classes: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Class-conditional categorical data — the UCI-Nursery stand-in for
/// naive Bayes. Each (class, feature) pair gets a biased value
/// distribution (one preferred value drawn with 60% probability), so NB's
/// conditional-probability tables carry real signal.
///
/// # Panics
///
/// Panics if `values == 0` or `classes == 0`.
#[must_use]
pub fn categorical(config: &CategoricalConfig) -> ClassDataset {
    assert!(config.values > 0 && config.classes > 0, "degenerate categorical config");
    let mut rng = StdRng::seed_from_u64(config.seed);
    // preferred[class][feature]
    let preferred: Vec<Vec<usize>> = (0..config.classes)
        .map(|_| (0..config.features).map(|_| rng.gen_range(0..config.values)).collect())
        .collect();
    let mut x = Matrix::zeros(config.instances, config.features);
    let mut labels = Vec::with_capacity(config.instances);
    for i in 0..config.instances {
        let class = i % config.classes;
        labels.push(class);
        let row = x.row_mut(i);
        for (f, v) in row.iter_mut().enumerate() {
            let value = if rng.gen_bool(0.6) {
                preferred[class][f]
            } else {
                rng.gen_range(0..config.values)
            };
            *v = value as f32;
        }
    }
    Dataset::new(x, labels)
}

/// Data labelled by a random ground-truth decision tree over continuous
/// features — the UCI-Covertype stand-in for ID3/CART experiments.
///
/// Features are uniform in `[0, 1]`; a random binary tree of `depth`
/// threshold splits assigns each leaf a class. Trees trained on this data
/// can in principle reach 100% accuracy, so accuracy measures tree-learner
/// quality, not label noise.
#[must_use]
pub fn tree_teacher(
    instances: usize,
    features: usize,
    depth: u32,
    classes: usize,
    seed: u64,
) -> ClassDataset {
    assert!(features > 0 && classes > 0 && depth > 0, "degenerate tree config");
    let mut rng = StdRng::seed_from_u64(seed);
    // Complete binary teacher tree stored implicitly: per internal node a
    // (feature, threshold); per leaf a class.
    let internal = (1usize << depth) - 1;
    let teacher: Vec<(usize, f32)> =
        (0..internal).map(|_| (rng.gen_range(0..features), rng.gen_range(0.25..0.75))).collect();
    let leaves: Vec<usize> = (0..(1usize << depth)).map(|_| rng.gen_range(0..classes)).collect();
    let mut x = Matrix::zeros(instances, features);
    let mut labels = Vec::with_capacity(instances);
    for i in 0..instances {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        let mut node = 0usize;
        for _ in 0..depth {
            let (f, t) = teacher[node];
            node = node * 2 + if row[f] <= t { 1 } else { 2 };
        }
        labels.push(leaves[node - internal]);
    }
    Dataset::new(x, labels)
}

/// Paper problem sizes from Table 4 (full scale — large!). Use the
/// `scaled` constructor for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperSizes {
    /// k-NN / SVM / LR / DNN reference-or-training instances (MNIST: 60000).
    pub train: usize,
    /// Testing instances (MNIST: 10000).
    pub test: usize,
    /// Feature dimensionality (MNIST: 784).
    pub features: usize,
    /// k for k-NN (20) and k-Means clusters (10).
    pub knn_k: usize,
    /// k-Means cluster count.
    pub kmeans_k: usize,
    /// DNN hidden width (paper: L2..L5 = 4096).
    pub dnn_hidden: usize,
    /// DNN output classes (10).
    pub dnn_out: usize,
}

impl PaperSizes {
    /// Full Table-4 sizes.
    #[must_use]
    pub fn full() -> PaperSizes {
        PaperSizes {
            train: 60000,
            test: 10000,
            features: 784,
            knn_k: 20,
            kmeans_k: 10,
            dnn_hidden: 4096,
            dnn_out: 10,
        }
    }

    /// Sizes divided by `factor` (min 1 each), preserving shape ratios —
    /// for tests and quick runs.
    #[must_use]
    pub fn scaled(factor: usize) -> PaperSizes {
        let f = factor.max(1);
        let full = PaperSizes::full();
        PaperSizes {
            train: (full.train / f).max(1),
            test: (full.test / f).max(1),
            features: (full.features / f).max(4),
            knn_k: full.knn_k.min((full.train / f).max(1)),
            kmeans_k: full.kmeans_k,
            dnn_hidden: (full.dnn_hidden / f).max(8),
            dnn_out: full.dnn_out,
        }
    }
}

/// UCI-Nursery-sized categorical data for the NB benchmark (Table 4:
/// 12960 instances, 8 features, 5 classes).
#[must_use]
pub fn nursery_like(seed: u64) -> ClassDataset {
    categorical(&CategoricalConfig { instances: 12960, features: 8, values: 5, classes: 5, seed })
}

/// UCI-Covertype-sized threshold-separable data for the CT benchmark
/// (Table 4: 522000 training + 59012 testing instances; Covertype has 54
/// features and 7 cover types). Returns (train, test).
#[must_use]
pub fn covertype_like(seed: u64) -> (ClassDataset, ClassDataset) {
    (
        tree_teacher(522_000, 54, 12, 7, seed),
        tree_teacher(59_012, 54, 12, 7, seed), // same teacher: same seed
    )
}

/// UCI-Gas-like continuous sensor data (the Section-2 profiling dataset):
/// 128-dimensional drifting Gaussian classes.
#[must_use]
pub fn gas_like(instances: usize, seed: u64) -> ClassDataset {
    gaussian_blobs(&BlobsConfig { instances, features: 128, classes: 6, spread: 0.25, seed })
}

/// MNIST-sized Gaussian-cluster data for the k-NN/k-Means/SVM/LR/DNN
/// benchmarks (Table 4: 60000 reference + 10000 testing instances, 784
/// features, 10 classes). Returns (reference, testing). Large: ~220 MB of
/// f32 features; use [`PaperSizes::scaled`] shapes for tests.
#[must_use]
pub fn mnist_like(seed: u64) -> (ClassDataset, ClassDataset) {
    let sizes = PaperSizes::full();
    let all = gaussian_blobs(&BlobsConfig {
        instances: sizes.train + sizes.test,
        features: sizes.features,
        classes: 10,
        spread: 0.25,
        seed,
    });
    let train_idx: Vec<usize> = (0..sizes.train).collect();
    let test_idx: Vec<usize> = (sizes.train..sizes.train + sizes.test).collect();
    (
        crate::Dataset::new(
            all.features.select_rows(&train_idx),
            train_idx.iter().map(|&i| all.labels[i]).collect(),
        ),
        crate::Dataset::new(
            all.features.select_rows(&test_idx),
            test_idx.iter().map(|&i| all.labels[i]).collect(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_separable() {
        let cfg = BlobsConfig { instances: 200, features: 8, classes: 4, spread: 0.05, seed: 3 };
        let a = gaussian_blobs(&cfg);
        let b = gaussian_blobs(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.classes(), 4);
        // With tiny spread, nearest-centroid classification is perfect:
        // instances of the same class are closer to each other on average.
        let d_same = dist(a.instance(0), a.instance(4)); // both class 0
        let d_diff = dist(a.instance(0), a.instance(1)); // class 0 vs 1
        assert!(d_same < d_diff, "{d_same} vs {d_diff}");
    }

    fn dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    #[test]
    fn separable_data_has_margin() {
        let d = linearly_separable(100, 8, 1.0, 9);
        assert_eq!(d.len(), 100);
        // Both classes present.
        assert!(d.labels.contains(&0));
        assert!(d.labels.contains(&1));
    }

    #[test]
    fn linear_teacher_is_noiseless_when_asked() {
        let (d, theta) = linear_teacher(50, 6, 0.0, 11);
        assert_eq!(theta.len(), 7);
        for i in 0..d.len() {
            let mut y = theta[0];
            for (j, v) in d.instance(i).iter().enumerate() {
                y += theta[j + 1] * v;
            }
            assert!((y - d.labels[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn categorical_values_in_range() {
        let cfg = CategoricalConfig { instances: 500, features: 8, values: 5, classes: 5, seed: 1 };
        let d = categorical(&cfg);
        for i in 0..d.len() {
            for &v in d.instance(i) {
                assert!((0.0..5.0).contains(&v) && v.fract() == 0.0);
            }
        }
        assert_eq!(d.classes(), 5);
    }

    #[test]
    fn tree_teacher_labels_follow_thresholds() {
        // Same seed twice -> identical labels; different seed -> usually not.
        let a = tree_teacher(300, 6, 4, 3, 5);
        let b = tree_teacher(300, 6, 4, 3, 5);
        assert_eq!(a, b);
        let c = tree_teacher(300, 6, 4, 3, 6);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn named_presets_have_paper_shapes() {
        let n = nursery_like(1);
        assert_eq!(n.len(), 12960);
        assert_eq!(n.features.cols(), 8);
        assert_eq!(n.classes(), 5);
        let g = gas_like(100, 2);
        assert_eq!(g.features.cols(), 128);
        // Same-seed covertype train/test share the teacher: a tree that
        // fits train transfers to test (checked in mlkit integration).
    }

    #[test]
    fn paper_sizes() {
        let full = PaperSizes::full();
        assert_eq!(full.train, 60000);
        assert_eq!(full.features, 784);
        let s = PaperSizes::scaled(100);
        assert_eq!(s.train, 600);
        assert_eq!(s.test, 100);
        assert!(s.features >= 4);
        assert!(s.knn_k <= s.train);
    }
}
